#include "apps/programs.hpp"

#include <sstream>

#include "common/hashing.hpp"

namespace mp5::apps {
namespace {

/// Deterministic pseudo-random value derived from a flow packet, for
/// fields (path utilization, path id, ...) that the trace does not model
/// physically.
Value derived(const FlowPacketInfo& info, std::uint64_t salt,
              std::uint64_t modulus) {
  return static_cast<Value>(
      mix64(info.flow * 0x9e3779b97f4a7c15ULL + info.packet_in_flow + salt) %
      modulus);
}

Value flow_sport(const FlowPacketInfo& info) {
  return static_cast<Value>(mix64(info.flow) & 0xffff);
}
Value flow_dport(const FlowPacketInfo& info) {
  return static_cast<Value>((mix64(info.flow) >> 16) & 0xffff);
}

} // namespace

AppSpec flowlet_app() {
  AppSpec app;
  app.name = "flowlet";
  // Flowlet switching [30] as in domino-examples/flowlets.c: pick a new
  // next hop when the inter-packet gap within a flow exceeds IPG.
  app.source = R"(
    struct Packet {
      int sport;
      int dport;
      int arrival;
      int new_hop;
      int id;
      int next_hop;
    };
    const int IPG = 40;
    const int NHOPS = 10;
    const int NFLOWLETS = 8192;
    int last_time[8192] = {0};
    int saved_hop[8192] = {0};
    void flowlet(struct Packet p) {
      p.new_hop = hash3(p.sport, p.dport, p.arrival) % NHOPS;
      p.id = hash2(p.sport, p.dport) % NFLOWLETS;
      if (p.arrival - last_time[p.id] > IPG) {
        saved_hop[p.id] = p.new_hop;
      }
      last_time[p.id] = p.arrival;
      p.next_hop = saved_hop[p.id];
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        flow_sport(info),
        flow_dport(info),
        static_cast<Value>(info.arrival_time),
        0, 0, 0};
  };
  app.flow_fields = {"sport", "dport"};
  return app;
}

AppSpec conga_app() {
  AppSpec app;
  app.name = "conga";
  // CONGA leaf-switch best-path table [1], as in domino-examples/conga.c:
  // remember the least-utilized path per destination.
  app.source = R"(
    struct Packet {
      int dst;
      int util;
      int path_id;
      int best;
    };
    const int NDST = 4096;
    int best_path_util[4096] = {1000000};
    int best_path[4096] = {0};
    void conga(struct Packet p) {
      if (p.util < best_path_util[p.dst % NDST]) {
        best_path_util[p.dst % NDST] = p.util;
        best_path[p.dst % NDST] = p.path_id;
      }
      p.best = best_path[p.dst % NDST];
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        static_cast<Value>(mix64(info.flow) % 4096), // dst
        derived(info, 17, 1000),                     // measured path util
        derived(info, 23, 16),                       // path id
        0};
  };
  app.flow_fields = {"dst"};
  return app;
}

AppSpec wfq_app() {
  AppSpec app;
  app.name = "wfq";
  // Priority computation for weighted fair queuing (start-time fair
  // queuing [32]): start = max(virtual time, flow's last finish time).
  app.source = R"(
    struct Packet {
      int sport;
      int dport;
      int size;
      int virtual_time;
      int start;
      int id;
    };
    const int NFLOWS = 1024;
    int last_finish[1024] = {0};
    void stfq(struct Packet p) {
      p.id = hash2(p.sport, p.dport) % NFLOWS;
      p.start = max(p.virtual_time, last_finish[p.id]);
      last_finish[p.id] = p.start + p.size;
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        flow_sport(info),
        flow_dport(info),
        static_cast<Value>(info.size_bytes),
        static_cast<Value>(info.arrival_time),
        0, 0};
  };
  app.flow_fields = {"sport", "dport"};
  return app;
}

AppSpec sequencer_app() {
  AppSpec app;
  app.name = "sequencer";
  // NOPaxos network sequencer [22]: stamp a global sequence number into
  // every OUM write. A single scalar register: the fundamental serial
  // case of §3.5.2.
  app.source = R"(
    struct Packet {
      int group;
      int op;
      int seq_no;
    };
    const int WRITE = 1;
    int counter = 0;
    void sequencer(struct Packet p) {
      if (p.op == WRITE) {
        counter = counter + 1;
        p.seq_no = counter;
      }
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        static_cast<Value>(mix64(info.flow) % 8), // replication group
        derived(info, 31, 10) < 9 ? 1 : 0,        // 90% writes
        0};
  };
  app.flow_fields = {"group"};
  return app;
}

std::vector<AppSpec> real_apps() {
  return {flowlet_app(), conga_app(), wfq_app(), sequencer_app()};
}

namespace {

AppSpec count_min_app() {
  AppSpec app;
  app.name = "count_min";
  // Count-min sketch [49-style]: three hashed counter rows, estimate is
  // the row minimum. Reads-after-writes fuse into one atom per row.
  app.source = R"(
    struct Packet { int key; int est; };
    const int W = 1024;
    int row0[1024] = {0};
    int row1[1024] = {0};
    int row2[1024] = {0};
    void cms(struct Packet p) {
      row0[hash2(p.key, 0) % W] = row0[hash2(p.key, 0) % W] + 1;
      row1[hash2(p.key, 1) % W] = row1[hash2(p.key, 1) % W] + 1;
      row2[hash2(p.key, 2) % W] = row2[hash2(p.key, 2) % W] + 1;
      p.est = min(row0[hash2(p.key, 0) % W],
                  min(row1[hash2(p.key, 1) % W],
                      row2[hash2(p.key, 2) % W]));
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{static_cast<Value>(mix64(info.flow) % 5000), 0};
  };
  app.flow_fields = {"key"};
  return app;
}

AppSpec syn_flood_app() {
  AppSpec app;
  app.name = "syn_flood";
  // SYN-flood detection: per-destination SYN vs ACK balance.
  app.source = R"(
    struct Packet { int dst; int syn; int ack; int alarm; };
    const int N = 2048;
    const int THRESH = 100;
    int syn_count[2048] = {0};
    int ack_count[2048] = {0};
    void detect(struct Packet p) {
      if (p.syn == 1) { syn_count[p.dst % N] = syn_count[p.dst % N] + 1; }
      if (p.ack == 1) { ack_count[p.dst % N] = ack_count[p.dst % N] + 1; }
      p.alarm = syn_count[p.dst % N] - ack_count[p.dst % N] > THRESH;
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    const bool syn = info.packet_in_flow == 0;
    return std::vector<Value>{
        static_cast<Value>(mix64(info.flow) % 2048), syn ? 1 : 0,
        syn ? 0 : 1, 0};
  };
  app.flow_fields = {"dst"};
  return app;
}

AppSpec dns_amplification_app() {
  AppSpec app;
  app.name = "dns_amp";
  // EXPOSURE-style [8] DNS amplification mitigation: per-source
  // response/request byte ratio.
  app.source = R"(
    struct Packet { int src; int len; int is_response; int suspicious; };
    const int N = 4096;
    int resp_bytes[4096] = {0};
    int req_bytes[4096] = {0};
    void monitor(struct Packet p) {
      if (p.is_response == 1) {
        resp_bytes[p.src % N] = resp_bytes[p.src % N] + p.len;
      } else {
        req_bytes[p.src % N] = req_bytes[p.src % N] + p.len;
      }
      p.suspicious = resp_bytes[p.src % N] > req_bytes[p.src % N] * 10;
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        static_cast<Value>(mix64(info.flow) % 4096),
        static_cast<Value>(info.size_bytes),
        derived(info, 41, 3) == 0 ? 1 : 0, 0};
  };
  app.flow_fields = {"src"};
  return app;
}

AppSpec rcp_app() {
  AppSpec app;
  app.name = "rcp";
  // RCP [14]: running RTT sum / packet count for the fair-rate update.
  app.source = R"(
    struct Packet { int rtt; int avg_rtt; };
    int sum_rtt = 0;
    int num_pkts = 0;
    void rcp(struct Packet p) {
      sum_rtt = sum_rtt + p.rtt;
      num_pkts = num_pkts + 1;
      p.avg_rtt = sum_rtt / num_pkts;
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{100 + derived(info, 53, 200), 0};
  };
  app.flow_fields = {"rtt"};
  return app;
}

AppSpec sampled_netflow_app() {
  AppSpec app;
  app.name = "netflow";
  // Sampled NetFlow [44]: a global sample counter gates the per-flow
  // counter update — a genuinely stateful predicate, so MP5 must emit
  // conservative phantoms and cancel them in flight (§3.3).
  app.source = R"(
    struct Packet { int fid; int sampled; };
    const int RATE = 16;
    const int N = 4096;
    int ticker = 0;
    int flow_pkts[4096] = {0};
    void sample(struct Packet p) {
      ticker = ticker + 1;
      p.sampled = (ticker % RATE) == 0;
      if (p.sampled) {
        flow_pkts[p.fid % N] = flow_pkts[p.fid % N] + 1;
      }
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{static_cast<Value>(mix64(info.flow) % 4096), 0};
  };
  app.flow_fields = {"fid"};
  return app;
}

AppSpec bloom_firewall_app() {
  AppSpec app;
  app.name = "bloom_firewall";
  // Stateful firewall: outbound packets insert the 5-tuple into a Bloom
  // filter; inbound packets are allowed only on a filter hit.
  app.source = R"(
    struct Packet { int tuple; int outbound; int allowed; };
    const int M = 8192;
    int bf0[8192] = {0};
    int bf1[8192] = {0};
    int bf2[8192] = {0};
    void firewall(struct Packet p) {
      if (p.outbound == 1) {
        bf0[hash2(p.tuple, 10) % M] = 1;
        bf1[hash2(p.tuple, 20) % M] = 1;
        bf2[hash2(p.tuple, 30) % M] = 1;
      }
      p.allowed = (p.outbound == 1) ||
                  (bf0[hash2(p.tuple, 10) % M] &
                   bf1[hash2(p.tuple, 20) % M] &
                   bf2[hash2(p.tuple, 30) % M]);
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        static_cast<Value>(mix64(info.flow) & 0xffffff),
        derived(info, 61, 2), 0};
  };
  app.flow_fields = {"tuple"};
  return app;
}

AppSpec dctcp_ecn_app() {
  AppSpec app;
  app.name = "dctcp_ecn";
  // DCTCP-style [2] per-port ECN accounting: fraction of marked bytes.
  app.source = R"(
    struct Packet { int port_id; int len; int ecn; int frac_x1000; };
    const int PORTS = 64;
    int ecn_bytes[64] = {0};
    int tot_bytes[64] = {0};
    void account(struct Packet p) {
      if (p.ecn == 1) {
        ecn_bytes[p.port_id % PORTS] = ecn_bytes[p.port_id % PORTS] + p.len;
      }
      tot_bytes[p.port_id % PORTS] = tot_bytes[p.port_id % PORTS] + p.len;
      p.frac_x1000 =
          ecn_bytes[p.port_id % PORTS] * 1000 / tot_bytes[p.port_id % PORTS];
    }
  )";
  app.filler = [](const FlowPacketInfo& info) {
    return std::vector<Value>{
        static_cast<Value>(mix64(info.flow) % 64),
        static_cast<Value>(info.size_bytes),
        derived(info, 71, 10) == 0 ? 1 : 0, 0};
  };
  app.flow_fields = {"port_id"};
  return app;
}

} // namespace

std::vector<AppSpec> extended_apps() {
  return {count_min_app(),       syn_flood_app(), dns_amplification_app(),
          rcp_app(),             sampled_netflow_app(),
          bloom_firewall_app(),  dctcp_ecn_app()};
}

std::string packet_counter_source() {
  return R"(
    struct Packet { int unused; };
    int count = 0;
    void counter(struct Packet p) {
      count = count + 1;
    }
  )";
}

std::string sequencer_example_source() {
  return R"(
    struct Packet { int stamp; };
    int count = 0;
    void sequencer(struct Packet p) {
      count = count + 1;
      p.stamp = count;
    }
  )";
}

std::string figure3_source() {
  return R"(
    struct Packet {
      int h1;
      int h2;
      int h3;
      int val;
      int mux;
    };
    int reg1[4] = {2, 4, 8, 16};
    int reg2[4] = {1, 3, 5, 7};
    int reg3[4] = {0};
    void func(struct Packet p) {
      if (p.mux == 1) {
        p.val = reg1[p.h1 % 4];
      } else {
        p.val = reg2[p.h2 % 4];
      }
      reg3[p.h3 % 4] = (p.mux == 1) ? reg3[p.h3 % 4] * p.val
                                    : reg3[p.h3 % 4] + p.val;
    }
  )";
}

std::string make_synthetic_source(std::uint32_t stateful_stages,
                                  std::size_t reg_size) {
  std::ostringstream os;
  os << "struct Packet {\n";
  for (std::uint32_t s = 0; s < stateful_stages; ++s) {
    os << "  int h" << s << ";\n";
  }
  os << "  int v;\n};\n";
  for (std::uint32_t s = 0; s < stateful_stages; ++s) {
    os << "int reg" << s << "[" << reg_size << "] = {0};\n";
  }
  os << "void synth(struct Packet p) {\n";
  if (stateful_stages == 0) {
    os << "  p.v = p.v + 1;\n";
  }
  for (std::uint32_t s = 0; s < stateful_stages; ++s) {
    os << "  reg" << s << "[p.h" << s << " % " << reg_size << "] = reg" << s
       << "[p.h" << s << " % " << reg_size << "] + p.v;\n";
  }
  os << "}\n";
  return os.str();
}

std::string table_routing_source() {
  return R"(
    struct Packet { int dst; int out_port; int allow; };
    const int LIMIT = 1000;
    table route (p.dst % 16) {
      0 : { p.out_port = 1; }
      1 : { p.out_port = 2; }
      2 : { p.out_port = 2; }
      3 : { p.out_port = 3; }
      default : { p.out_port = 0; }
    }
    int conn_count[256] = {0};
    void acl(struct Packet p) {
      apply route;
      if (p.out_port != 0) {
        conn_count[p.dst % 256] = conn_count[p.dst % 256] + 1;
      }
      p.allow = (p.out_port != 0) && (conn_count[p.dst % 256] < LIMIT);
    }
  )";
}

std::string stateful_predicate_source() {
  // The guard of reg2's update depends on reg1's value, so it cannot be
  // resolved preemptively: MP5 generates a conservative phantom and
  // cancels it in flight when the predicate is false (§3.3).
  return R"(
    struct Packet { int key; int v; int out; };
    int gate[64] = {0};
    int acc[64] = {0};
    void f(struct Packet p) {
      gate[p.key % 64] = gate[p.key % 64] + 1;
      if (gate[p.key % 64] & 1) {
        acc[p.v % 64] = acc[p.v % 64] + p.v;
      }
      p.out = p.v;
    }
  )";
}

std::string stateful_index_source() {
  // reg2's index is itself read from reg1: the index cannot be resolved
  // preemptively, so reg2 is pinned to a single pipeline (no D2, §3.3).
  return R"(
    struct Packet { int key; int v; int idx; int out; };
    int ptr[16] = {0};
    int table[64] = {0};
    void f(struct Packet p) {
      ptr[p.key % 16] = (ptr[p.key % 16] + 1) % 64;
      p.idx = ptr[p.key % 16];
      table[p.idx] = table[p.idx] + p.v;
      p.out = p.key;
    }
  )";
}

} // namespace mp5::apps
