// Deterministic integer hashing used by the Domino builtins (hash2/hash3)
// and by the simulators (flow hashing, static sharding).
//
// Both a single-pipeline reference run and an MP5 run of the same program
// must compute identical hashes, so these functions are pure and fixed
// across platforms (no std::hash, whose output is implementation-defined).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mp5 {

/// 64-bit finalizer (SplitMix64 mix function). Good avalanche behaviour.
std::uint64_t mix64(std::uint64_t x) noexcept;

/// Hash of two values, as exposed to Domino programs via hash2(a, b).
Value hash2(Value a, Value b) noexcept;

/// Hash of three values, as exposed to Domino programs via hash3(a, b, c).
Value hash3(Value a, Value b, Value c) noexcept;

/// Hash of five values — convenience for 5-tuple flow hashing.
Value hash5(Value a, Value b, Value c, Value d, Value e) noexcept;

/// Non-negative remainder: result in [0, m) for m > 0, matching how packet
/// processing programs index register arrays (reg[h % N] must be in range
/// even for negative hash values).
Value floor_mod(Value v, Value m) noexcept;

} // namespace mp5
