#include "common/hashing.hpp"

namespace mp5 {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

namespace {

std::uint64_t combine(std::uint64_t seed, std::uint64_t v) noexcept {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

Value to_value(std::uint64_t h) noexcept {
  // Domino values are signed; keep hashes non-negative so that `h % N`
  // indexing behaves identically everywhere.
  return static_cast<Value>(h >> 1);
}

} // namespace

Value hash2(Value a, Value b) noexcept {
  std::uint64_t h = combine(0x2545f4914f6cdd1dULL, static_cast<std::uint64_t>(a));
  h = combine(h, static_cast<std::uint64_t>(b));
  return to_value(h);
}

Value hash3(Value a, Value b, Value c) noexcept {
  std::uint64_t h = combine(0x27d4eb2f165667c5ULL, static_cast<std::uint64_t>(a));
  h = combine(h, static_cast<std::uint64_t>(b));
  h = combine(h, static_cast<std::uint64_t>(c));
  return to_value(h);
}

Value hash5(Value a, Value b, Value c, Value d, Value e) noexcept {
  std::uint64_t h = combine(0x9e3779b185ebca87ULL, static_cast<std::uint64_t>(a));
  h = combine(h, static_cast<std::uint64_t>(b));
  h = combine(h, static_cast<std::uint64_t>(c));
  h = combine(h, static_cast<std::uint64_t>(d));
  h = combine(h, static_cast<std::uint64_t>(e));
  return to_value(h);
}

Value floor_mod(Value v, Value m) noexcept {
  if (m <= 0) return 0;
  Value r = v % m;
  return r < 0 ? r + m : r;
}

} // namespace mp5
