// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator (traffic generators, static
// random sharding, tie-breaking) draw from an Rng seeded explicitly, so
// every experiment in the paper reproduction is exactly repeatable.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/types.hpp"

namespace mp5 {

/// xoshiro256** PRNG with a SplitMix64 seeding sequence.
///
/// Chosen over std::mt19937_64 for speed (the cycle simulator may draw a
/// value per packet) and for a guaranteed-stable stream across standard
/// library implementations.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the full state from a 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed double with the given mean.
  double next_exponential(double mean);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child stream (for per-component determinism).
  Rng fork();

  /// Raw generator state, for checkpoint/restore. A restored stream
  /// continues exactly where the saved one left off.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

private:
  std::uint64_t s_[4] = {};
};

} // namespace mp5
