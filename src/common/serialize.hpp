#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace mp5 {

/// Little-endian binary encoder for checkpoint payloads and trace files.
/// All integers are written as fixed-width little-endian regardless of
/// host byte order so checkpoint files are portable across machines.
class ByteWriter {
public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(const void* p, std::size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }

  void str(std::string_view s) {
    u64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

private:
  std::string buf_;
};

/// Bounds-checked decoder over a byte range. Any read past the end
/// throws Error — a truncated or corrupted checkpoint must surface as a
/// diagnostic, never as undefined behavior.
class ByteReader {
public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw Error("serialized bool has value " + std::to_string(v));
    return v != 0;
  }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  /// Read a count that will be used to size a container, rejecting
  /// values that could not possibly fit in the remaining bytes (each
  /// element needs at least `min_elem_bytes`). Guards against a
  /// corrupted length field causing a giant allocation.
  std::uint64_t count(std::size_t min_elem_bytes = 1) {
    const std::uint64_t n = u64();
    if (min_elem_bytes > 0 && n > remaining() / min_elem_bytes) {
      throw Error("serialized count " + std::to_string(n) +
                  " exceeds remaining payload");
    }
    return n;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  void expect_done() const {
    if (!done()) {
      throw Error("checkpoint payload has " + std::to_string(remaining()) +
                  " trailing bytes");
    }
  }

private:
  void need(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw Error("checkpoint payload truncated (need " + std::to_string(n) +
                  " bytes, have " + std::to_string(data_.size() - pos_) + ")");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// FNV-1a 64-bit — used for checkpoint checksums and config
/// fingerprints. Not cryptographic; detects truncation and bit rot.
inline std::uint64_t fnv1a(std::string_view data,
                           std::uint64_t hash = kFnv1aOffset) {
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnv1aPrime;
  }
  return hash;
}

} // namespace mp5
