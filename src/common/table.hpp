// Plain-text aligned table printer for benchmark output.
//
// Every bench binary reproduces a paper table/figure by printing rows; this
// helper keeps their output uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mp5 {

class TextTable {
public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Format helpers for numeric cells.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

} // namespace mp5
