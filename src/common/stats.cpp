#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace mp5 {

void RunningStats::add(double x) {
  if (std::isnan(x)) {
    throw ConfigError("RunningStats::add: NaN sample");
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double bucket_width, std::size_t buckets)
    : width_(bucket_width), counts_(buckets, 0) {
  if (bucket_width <= 0.0 || buckets == 0) {
    throw ConfigError("Histogram: bucket_width and buckets must be positive");
  }
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    throw ConfigError("Histogram::add: NaN sample");
  }
  auto idx = static_cast<std::size_t>(std::max(0.0, x) / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

double Histogram::quantile(double q) const {
  if (std::isnan(q) || q < 0.0 || q > 1.0) {
    throw ConfigError("Histogram::quantile: q must be in [0, 1]");
  }
  // An empty histogram has no quantiles; NaN is unambiguous where the old
  // 0.0 looked like a legitimate first-bucket answer.
  if (total_ == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += counts_[i];
    if (acc > target) return static_cast<double>(i + 1) * width_;
  }
  return static_cast<double>(counts_.size()) * width_;
}

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace mp5
