// Fundamental scalar types shared across the MP5 code base.
#pragma once

#include <cstdint>

namespace mp5 {

/// Value carried in packet header fields and registers. The Domino subset
/// is integer-only (as in the paper's examples); we use a 64-bit signed
/// value so arithmetic in programs never overflows in practice.
using Value = std::int64_t;

/// Simulation time in pipeline clock cycles.
using Cycle = std::uint64_t;

/// Global packet sequence number, assigned in switch-arrival order.
/// This is the total order a logical single pipeline would process in,
/// and therefore the order condition C1 is defined against.
using SeqNo = std::uint64_t;

/// Identifier of a register array declared by a program.
using RegId = std::uint32_t;

/// Index within a register array.
using RegIndex = std::uint32_t;

/// Pipeline identifier (0..k-1).
using PipelineId = std::uint32_t;

/// Pipeline stage identifier (0..s-1).
using StageId = std::uint32_t;

inline constexpr SeqNo kInvalidSeqNo = ~SeqNo{0};

} // namespace mp5
