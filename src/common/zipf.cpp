#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace mp5 {

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), exponent_(exponent) {
  if (n == 0) throw ConfigError("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0; // guard against FP round-off at the tail
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

TwoClassSkewSampler::TwoClassSkewSampler(std::uint64_t n, Rng& permutation_rng,
                                         double hot_fraction_of_traffic,
                                         double hot_fraction_of_keys)
    : n_(n), hot_traffic_(hot_fraction_of_traffic) {
  if (n == 0) throw ConfigError("TwoClassSkewSampler: n must be > 0");
  if (hot_fraction_of_traffic < 0.0 || hot_fraction_of_traffic > 1.0 ||
      hot_fraction_of_keys < 0.0 || hot_fraction_of_keys > 1.0) {
    throw ConfigError("TwoClassSkewSampler: fractions must lie in [0, 1]");
  }
  hot_keys_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(hot_fraction_of_keys * static_cast<double>(n))));
  hot_keys_ = std::min(hot_keys_, n_);
  permutation_.resize(n);
  std::iota(permutation_.begin(), permutation_.end(), 0);
  permutation_rng.shuffle(permutation_);
}

std::uint64_t TwoClassSkewSampler::sample(Rng& rng) const {
  const bool hot = rng.chance(hot_traffic_) || hot_keys_ == n_;
  const std::uint64_t cold_keys = n_ - hot_keys_;
  std::uint64_t slot;
  if (hot || cold_keys == 0) {
    slot = rng.next_below(hot_keys_);
  } else {
    slot = hot_keys_ + rng.next_below(cold_keys);
  }
  return permutation_[slot];
}

} // namespace mp5
