#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mp5 {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw Error("TextTable: row has " + std::to_string(cells.size()) +
                " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::integer(long long v) { return std::to_string(v); }

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left
         << std::setw(static_cast<int>(width[c])) << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) line(row);
}

} // namespace mp5
