// Exception hierarchy for the MP5 library.
//
// Compiler front-end errors (syntax, semantics) and back-end resource
// errors (program does not fit the machine) are distinct types so callers
// can report them differently; both derive from Error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mp5 {

/// Root of all errors thrown by the MP5 library.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Lexical or syntactic error in a Domino program.
class ParseError : public Error {
public:
  ParseError(int line, int col, const std::string& msg)
      : Error("parse error at " + std::to_string(line) + ":" +
              std::to_string(col) + ": " + msg),
        line_(line), col_(col) {}

  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }

private:
  int line_;
  int col_;
};

/// Semantic error (undeclared identifier, bad types, ...).
class SemanticError : public Error {
public:
  explicit SemanticError(const std::string& msg)
      : Error("semantic error: " + msg) {}
};

/// Program does not fit the target machine (too many stages, atoms, ...).
class ResourceError : public Error {
public:
  explicit ResourceError(const std::string& msg)
      : Error("resource error: " + msg) {}
};

/// Invalid configuration of a simulator or runtime component.
class ConfigError : public Error {
public:
  explicit ConfigError(const std::string& msg)
      : Error("config error: " + msg) {}
};

/// A runtime invariant of the simulator was violated (detected by the
/// opt-in SimOptions::paranoid_checks watchdog). Unlike ConfigError this
/// never indicates user error: it means simulator state was about to be
/// silently corrupted, and carries the invariant name and the cycle the
/// violation was detected in.
class InvariantError : public Error {
public:
  InvariantError(const std::string& invariant, std::uint64_t cycle,
                 const std::string& detail)
      : Error("invariant violation [" + invariant + "] at cycle " +
              std::to_string(cycle) + ": " + detail),
        invariant_(invariant), cycle_(cycle) {}

  const std::string& invariant() const noexcept { return invariant_; }
  std::uint64_t cycle() const noexcept { return cycle_; }

private:
  std::string invariant_;
  std::uint64_t cycle_;
};

} // namespace mp5
