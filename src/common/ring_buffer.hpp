// Fixed-capacity ring buffer with stable virtual addresses.
//
// The paper's per-stage FIFOs (§3.2) are "implemented as independent ring
// buffers" supporting three operations: push (tail append, drop when full),
// insert (replace a previously pushed phantom packet *in place* with its
// data packet), and pop (head removal). The in-place insert requires an
// address that stays valid while the entry is queued; RingFifo exposes a
// monotonically increasing *virtual index* per pushed entry for this.
//
// capacity == 0 selects unbounded mode (the buffer grows on demand). The
// simulator uses this to model the paper's "dynamically adapt per-stage
// FIFO sizes to ensure no packet loss" configuration (§4.3.1) while still
// recording the depth high-water mark.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/error.hpp"

namespace mp5 {

template <typename T>
class RingFifo {
public:
  /// capacity == 0 means unbounded (grow on demand).
  explicit RingFifo(std::size_t capacity = 0)
      : bounded_(capacity != 0),
        buf_(capacity != 0 ? capacity : kInitialUnboundedSlots) {}

  bool empty() const noexcept { return size_ == 0; }
  bool full() const noexcept { return bounded_ && size_ == buf_.size(); }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return bounded_ ? buf_.size() : 0; }

  /// Greatest size() ever observed; used for queue-depth reporting.
  std::size_t high_water_mark() const noexcept { return high_water_; }

  /// Append at the tail. Returns the entry's virtual index, or nullopt if
  /// the FIFO is bounded and full (the caller drops the packet).
  std::optional<std::uint64_t> push(T value) {
    if (full()) return std::nullopt;
    if (size_ == buf_.size()) grow();
    buf_[physical(head_vidx_ + size_)] = std::move(value);
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    return head_vidx_ + size_ - 1;
  }

  /// True while the entry pushed with virtual index `vidx` is still queued.
  bool contains(std::uint64_t vidx) const noexcept {
    return vidx >= head_vidx_ && vidx < head_vidx_ + size_;
  }

  /// Access a queued entry by virtual index. Precondition: contains(vidx).
  T& at(std::uint64_t vidx) {
    if (!contains(vidx)) throw Error("RingFifo::at: stale virtual index");
    return buf_[physical(vidx)];
  }
  const T& at(std::uint64_t vidx) const {
    if (!contains(vidx)) throw Error("RingFifo::at: stale virtual index");
    return buf_[physical(vidx)];
  }

  /// Replace a queued entry in place (the FIFO `insert` operation).
  void replace(std::uint64_t vidx, T value) { at(vidx) = std::move(value); }

  T& front() {
    if (empty()) throw Error("RingFifo::front: empty");
    return buf_[physical(head_vidx_)];
  }
  const T& front() const {
    if (empty()) throw Error("RingFifo::front: empty");
    return buf_[physical(head_vidx_)];
  }

  /// Virtual index of the current head. Precondition: !empty().
  std::uint64_t front_vidx() const {
    if (empty()) throw Error("RingFifo::front_vidx: empty");
    return head_vidx_;
  }

  void pop_front() {
    if (empty()) throw Error("RingFifo::pop_front: empty");
    buf_[physical(head_vidx_)] = T{}; // release any owned resources
    ++head_vidx_;
    --size_;
  }

  void clear() {
    while (!empty()) pop_front();
  }

  /// Virtual index of the next entry to be popped (== the vidx the next
  /// push returns when empty). Exposed for checkpoint serialization.
  std::uint64_t base_vidx() const noexcept { return head_vidx_; }

  /// Checkpoint restore: reset the virtual-index origin and high-water
  /// mark on an *empty* ring, so subsequent push() calls reproduce the
  /// exact virtual indexes of the checkpointed run (entry vidx =
  /// head_vidx + position; the physical layout is unobservable).
  void restore_base(std::uint64_t head_vidx, std::size_t high_water) {
    if (!empty()) {
      throw Error("RingFifo::restore_base: ring is not empty");
    }
    head_vidx_ = head_vidx;
    high_water_ = high_water;
  }

private:
  static constexpr std::size_t kInitialUnboundedSlots = 16;

  std::size_t physical(std::uint64_t vidx) const noexcept {
    return static_cast<std::size_t>(vidx % buf_.size());
  }

  void grow() {
    // Unbounded mode only: re-lay entries out into a doubled buffer,
    // preserving virtual indexes (physical slot = vidx % new_size).
    std::vector<T> bigger(buf_.size() * 2);
    for (std::uint64_t v = head_vidx_; v < head_vidx_ + size_; ++v) {
      bigger[static_cast<std::size_t>(v % bigger.size())] =
          std::move(buf_[physical(v)]);
    }
    buf_ = std::move(bigger);
  }

  bool bounded_;
  std::vector<T> buf_;
  std::uint64_t head_vidx_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
};

} // namespace mp5
