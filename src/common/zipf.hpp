// Zipf-distributed and two-class-skewed integer samplers.
//
// The paper's sensitivity analysis (§4.3.1) uses two state-access patterns:
//   * uniform  — every register index equally likely;
//   * skewed   — 95% of packets access 30% of indexes (heavy-tail, derived
//                from datacenter traffic studies).
// ZipfSampler provides a classic Zipf(s) law used by the extended ablations;
// TwoClassSkewSampler implements the exact 95/30 pattern from the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace mp5 {

/// Samples integers in [0, n) with P(i) proportional to 1/(i+1)^s,
/// using an inverse-CDF table (O(log n) per sample).
class ZipfSampler {
public:
  ZipfSampler(std::uint64_t n, double exponent);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const noexcept { return n_; }
  double exponent() const noexcept { return exponent_; }

private:
  std::uint64_t n_;
  double exponent_;
  std::vector<double> cdf_;
};

/// Samples integers in [0, n): with probability `hot_fraction_of_traffic`
/// the sample is drawn uniformly from the first
/// ceil(hot_fraction_of_keys * n) "hot" indexes, otherwise uniformly from
/// the remaining "cold" indexes. A deterministic permutation decouples
/// hotness from numeric index order so that range-based sharding cannot
/// accidentally align with the hot set.
class TwoClassSkewSampler {
public:
  /// Defaults reproduce the paper's skewed pattern: 95% of packets access
  /// 30% of states.
  TwoClassSkewSampler(std::uint64_t n, Rng& permutation_rng,
                      double hot_fraction_of_traffic = 0.95,
                      double hot_fraction_of_keys = 0.30);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const noexcept { return n_; }
  std::uint64_t hot_keys() const noexcept { return hot_keys_; }

private:
  std::uint64_t n_;
  std::uint64_t hot_keys_;
  double hot_traffic_;
  std::vector<std::uint64_t> permutation_;
};

} // namespace mp5
