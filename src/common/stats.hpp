// Lightweight statistics accumulators used by the metrics module and the
// benchmark harnesses.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mp5 {

/// Streaming mean / min / max / variance accumulator (Welford).
class RunningStats {
public:
  /// Throws ConfigError on NaN: one NaN would silently poison the mean,
  /// variance and extrema for the rest of the run.
  void add(double x);

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_width * buckets); values beyond
/// the last bucket are clamped into it. Used for queue-depth distributions.
class Histogram {
public:
  Histogram(double bucket_width, std::size_t buckets);

  /// Throws ConfigError on NaN (it has no bucket).
  void add(double x);
  std::uint64_t total() const noexcept { return total_; }

  /// Value below which `q` of the mass lies, to bucket precision. Returns
  /// NaN on an empty histogram (there is no mass to take a quantile of; an
  /// earlier version returned 0.0, indistinguishable from real data).
  /// Throws ConfigError when `q` is outside [0, 1] or NaN.
  double quantile(double q) const;

  /// Convenience percentiles (same semantics as quantile()).
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  const std::vector<std::uint64_t>& buckets() const noexcept { return counts_; }
  double bucket_width() const noexcept { return width_; }

private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Exact percentile of a sample vector (copies and sorts; for small vectors
/// such as per-run throughput samples).
double percentile(std::vector<double> samples, double q);

} // namespace mp5
