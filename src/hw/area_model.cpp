#include "hw/area_model.hpp"

#include <cmath>

namespace mp5::hw {
namespace {

// Per-stage area at the reference configuration (k = 4, 512 b headers,
// 48 b phantoms, depth-8 FIFOs): 0.21 mm^2, from Table 1 (0.84 mm^2 over
// four stages). The model scales it with k^2 and the component widths.
constexpr double kRefPerStageMm2 = 0.21;
constexpr std::uint32_t kRefPipelines = 4;

// Fixed component shares at the reference point. The paper reports the
// area is dominated by the crossbars (§4.2, consistent with dRMT [12]).
constexpr double kCrossbarShare = 0.85;
constexpr double kFifoShare = 0.10;
constexpr double kLogicShare = 0.05;

constexpr double kRefHeaderBits = 512.0;
constexpr double kRefPhantomBits = 48.0;
constexpr double kRefFifoDepth = 8.0;

} // namespace

AreaBreakdown chip_area(const HwConfig& config) {
  const double k = config.pipelines;
  const double k_scale =
      (k * k) / (kRefPipelines * static_cast<double>(kRefPipelines));
  const double ref_crossbar = kRefPerStageMm2 * kCrossbarShare;
  const double ref_fifo = kRefPerStageMm2 * kFifoShare;
  const double ref_logic = kRefPerStageMm2 * kLogicShare;

  // Crossbars: k x k, area proportional to k^2 and the carried width.
  const double width_scale_data =
      config.header_bits / (kRefHeaderBits + kRefPhantomBits);
  const double width_scale_phantom =
      config.phantom_bits / (kRefHeaderBits + kRefPhantomBits);

  AreaBreakdown area;
  area.data_crossbar_mm2 = ref_crossbar * k_scale * width_scale_data;
  area.phantom_crossbar_mm2 = ref_crossbar * k_scale * width_scale_phantom;
  // FIFOs: k lanes per stage per pipeline -> k^2 lanes, each depth entries
  // of (header + phantom metadata) storage.
  area.fifo_mm2 = ref_fifo * k_scale * (config.fifo_depth / kRefFifoDepth) *
                  ((config.header_bits + config.phantom_bits) /
                   (kRefHeaderBits + kRefPhantomBits));
  // Steering / sharding logic: replicated per pipeline pair boundary.
  area.steering_logic_mm2 = ref_logic * k_scale;

  const double per_stage = area.data_crossbar_mm2 + area.phantom_crossbar_mm2 +
                           area.fifo_mm2 + area.steering_logic_mm2;
  area.data_crossbar_mm2 *= config.stages;
  area.phantom_crossbar_mm2 *= config.stages;
  area.fifo_mm2 *= config.stages;
  area.steering_logic_mm2 *= config.stages;
  area.total_mm2 = per_stage * config.stages;
  return area;
}

double clock_ghz(const HwConfig& config) {
  // Critical path: crossbar select tree (one mux level per log2 k) plus a
  // constant for FIFO head comparison and latching. Constants are chosen
  // so the 15 nm reference points sit comfortably above 1 GHz, matching
  // the paper's ">= 1 GHz for all configurations" result.
  const double levels =
      std::ceil(std::log2(std::max(2u, config.pipelines)));
  const double path_ps = 220.0 + 60.0 * levels;
  return 1000.0 / path_ps;
}

bool meets_1ghz(const HwConfig& config) { return clock_ghz(config) >= 1.0; }

double sram_overhead_bytes_per_pipeline(std::uint32_t stateful_stages,
                                        std::uint64_t entries_per_stage) {
  const double bits = static_cast<double>(stateful_stages) *
                      static_cast<double>(entries_per_stage) *
                      SramOverhead::kBitsPerIndex;
  return bits / 8.0;
}

ChipletCost chiplet_cost(const ChipletConfig& config) {
  const std::uint32_t k = config.base.pipelines;
  const std::uint32_t c = std::max(1u, config.chiplets);
  ChipletCost cost;
  // Local crossbars: c copies of a (k/c)-pipeline switch's interconnect.
  HwConfig local = config.base;
  local.pipelines = k / c;
  cost.local_crossbar_mm2 = chip_area(local).total_mm2 * c;
  // D2D interfaces: each chiplet exposes the full data+phantom width once
  // per stage boundary toward each other chiplet. Serdes area per bit is
  // modeled at ~25% of the equivalent on-die crossbar wiring per crossing
  // pair (disaggregation trades cheap wires for interface macros).
  const double per_stage_full =
      chip_area(config.base).total_mm2 / config.base.stages;
  cost.d2d_interface_mm2 = 0.25 * per_stage_full *
                           (static_cast<double>(c - 1) / c) *
                           config.base.stages;
  cost.total_mm2 = cost.local_crossbar_mm2 + cost.d2d_interface_mm2;
  // Cross-chiplet hop adds ~400 ps of serdes + package latency to the
  // stage-boundary path.
  const double levels =
      std::ceil(std::log2(std::max(2u, local.pipelines)));
  cost.cross_chiplet_ghz = 1000.0 / (220.0 + 60.0 * levels + 400.0);
  cost.cross_traffic_fraction = 1.0 - 1.0 / static_cast<double>(c);
  return cost;
}

double paper_table1_mm2(std::uint32_t pipelines, std::uint32_t stages) {
  struct Point {
    std::uint32_t k, s;
    double mm2;
  };
  static constexpr Point kTable[] = {
      {2, 4, 0.21},  {2, 8, 0.42},  {2, 12, 0.63},  {2, 16, 0.81},
      {4, 4, 0.84},  {4, 8, 1.68},  {4, 12, 2.52},  {4, 16, 3.36},
      {8, 4, 3.2},   {8, 8, 6.4},   {8, 12, 9.6},   {8, 16, 12.8},
  };
  for (const auto& point : kTable) {
    if (point.k == pipelines && point.s == stages) return point.mm2;
  }
  return -1.0;
}

} // namespace mp5::hw
