// Analytic hardware cost model for MP5's new components (§4.2, Table 1).
//
// The paper synthesized the System Verilog design with Synopsys DC on the
// 15 nm NanGate open cell library; that toolchain is not available here, so
// this model reproduces Table 1 from the published scaling laws and data
// points (see DESIGN.md, substitutions):
//   * chip area grows linearly with the number of stages and quadratically
//     with the number of pipelines, dominated by the k x k crossbars;
//   * the per-stage constant is calibrated so that k = 4 matches Table 1
//     exactly (0.21 mm^2/stage); k = 2 then matches exactly and k = 8 is
//     within ~5% of the published 0.8 mm^2/stage;
//   * every configuration meets 1 GHz (crossbar depth grows only with
//     log2 k);
//   * SRAM overhead is 30 bits per register index: 6 bits of pipeline id
//     in the index-to-pipeline map, a 16-bit packet access counter and an
//     8-bit in-flight counter.
#pragma once

#include <cstdint>

namespace mp5::hw {

struct HwConfig {
  std::uint32_t pipelines = 4;
  std::uint32_t stages = 16;
  std::uint32_t fifo_depth = 8;      // entries per lane (§4.2 uses 8)
  std::uint32_t phantom_bits = 48;   // phantom packet size (§4.2)
  std::uint32_t header_bits = 512;   // data packet header size (§4.2)
};

struct AreaBreakdown {
  double data_crossbar_mm2 = 0;
  double phantom_crossbar_mm2 = 0;
  double fifo_mm2 = 0;
  double steering_logic_mm2 = 0;
  double total_mm2 = 0;
};

/// Total chip area of the MP5-specific components (crossbars, per-stage
/// FIFOs, steering and sharding logic) for the whole pipeline array.
AreaBreakdown chip_area(const HwConfig& config);

/// Estimated achievable clock in GHz (critical path through one crossbar
/// traversal plus FIFO head arbitration).
double clock_ghz(const HwConfig& config);

/// True when the configuration meets the 1 GHz target of §4.2.
bool meets_1ghz(const HwConfig& config);

struct SramOverhead {
  static constexpr std::uint32_t kPipelineBits = 6;
  static constexpr std::uint32_t kAccessCounterBits = 16;
  static constexpr std::uint32_t kInFlightBits = 8;
  static constexpr std::uint32_t kBitsPerIndex =
      kPipelineBits + kAccessCounterBits + kInFlightBits; // 30 (§4.2)
};

/// SRAM bytes per pipeline for the index-to-pipeline map and the sharding
/// counters: stateful_stages * entries_per_stage indexes at 30 bits each.
double sram_overhead_bytes_per_pipeline(std::uint32_t stateful_stages,
                                        std::uint64_t entries_per_stage);

/// Published Table 1 totals (mm^2) for comparison, or a negative value if
/// (pipelines, stages) is not one of the paper's grid points.
double paper_table1_mm2(std::uint32_t pipelines, std::uint32_t stages);

// --- §3.5.3 future-work extension: chiplet disaggregation -------------
//
// The paper sketches spreading the processing pipelines across multiple
// digital chiplets. Splitting a k-pipeline crossbar into c chiplets turns
// each full k x k crossbar into c local (k/c x k/c) crossbars plus
// die-to-die (D2D) serdes links for the cross-chiplet lanes. Area shrinks
// quadratically per chiplet while the D2D interfaces add a per-crossing
// cost and a latency penalty that caps the achievable stage clock.

struct ChipletConfig {
  HwConfig base;
  std::uint32_t chiplets = 2; // must divide base.pipelines
};

struct ChipletCost {
  double local_crossbar_mm2 = 0; // sum over chiplets
  double d2d_interface_mm2 = 0;  // serdes for cross-chiplet lanes
  double total_mm2 = 0;
  /// Achievable clock for stages whose packets cross chiplets.
  double cross_chiplet_ghz = 0;
  /// Fraction of uniformly-sprayed steering crossings that leave the
  /// source chiplet (1 - 1/c), i.e. how often the D2D penalty is paid.
  double cross_traffic_fraction = 0;
};

ChipletCost chiplet_cost(const ChipletConfig& config);

} // namespace mp5::hw
