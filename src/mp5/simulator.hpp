// Cycle-accurate simulator of the MP5 switch architecture (§3.2, Figure 4).
//
// Model, per clock cycle:
//   1. Arrivals: packets whose arrival time falls in this cycle are
//      admitted in (time, port) order. Each is assigned a global sequence
//      number, run through the compiled address-resolution logic (the
//      hoisted stateless slices), given its access plan
//      <reg, index, pipeline, stage> via the index-to-pipeline map, and
//      sprayed round-robin across pipeline ingress queues. Phantom packets
//      are generated immediately (§3.3 "phantom packets are generated on
//      packet arrival") and delivered over the phantom channel to their
//      destination stage FIFOs — the channel does no processing en route
//      (Invariant 1), modeled as same-cycle delivery in arrival order.
//   2. Each pipeline admits one packet per cycle from its ingress queue
//      into the address-resolution stage (transformed stage 0).
//   3. Every (pipeline, stage) cell processes at most one packet:
//      a packet arriving for stateful processing here replaces its phantom
//      in the logical FIFO (`insert`, not a processing slot); an arriving
//      stateless pass-through packet is processed with priority
//      (Invariant 2); otherwise the cell pops the FIFO — a phantom head
//      blocks, a cancelled phantom costs the wasted cycle of §3.3, a data
//      head executes the stage's atoms. Processed packets advance one
//      stage, steering through the crossbar when their next access lives
//      in another pipeline (D3).
//   4. Every remap period, the dynamic sharding heuristic (Figure 6) moves
//      register indexes between pipelines (in-flight guarded) and resets
//      the access counters.
//
// Hot-path engineering (see DESIGN.md "Performance engineering"):
//   * Packets live in a PacketArena and move between queues as 32-bit
//     refs; the per-cell arrival buffers are fixed-stride dense slots and
//     the (pipeline, stage) FIFO grid is one flat vector.
//   * The realistic phantom channel is a slot pool plus a lazy-deletion
//     min-heap instead of a multimap.
//   * When the switch is completely drained (fault-free runs only), the
//     clock jumps straight to the next event (SimOptions::fast_forward).
//   * SimOptions::threads > 1 steps lanes on a persistent worker pool
//     with a per-cycle barrier; all cross-lane effects are staged per
//     worker (WorkerCtx) and merged deterministically, so results are
//     bit-identical to the sequential engine.
//   * SimOptions::engine == kEvent replaces the dense stage walk with an
//     activity-bitmap walk (cells visited only when they might hold work),
//     skips no-progress cycle stretches arithmetically even under fault
//     plans, and — with threads > 1 — dispatches only the workers whose
//     lane blocks are active, running barrier-free while at most one block
//     is busy (see DESIGN.md "Event-driven engine").
//
// The same class implements the ablations (no-D4, static sharding, naive
// single-pipeline, ideal) via SimOptions; the recirculation baseline has
// its own simulator in src/baseline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "banzai/ir.hpp"
#include "common/rng.hpp"
#include "metrics/c1_checker.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/faults.hpp"
#include "mp5/options.hpp"
#include "mp5/shard_map.hpp"
#include "mp5/stage_fifo.hpp"
#include "mp5/transform.hpp"
#include "packet/arena.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "trace/trace_source.hpp"

namespace mp5 {

class ByteReader;

class Mp5Simulator {
public:
  Mp5Simulator(const Mp5Program& program, const SimOptions& options);
  ~Mp5Simulator();

  Mp5Simulator(const Mp5Simulator&) = delete;
  Mp5Simulator& operator=(const Mp5Simulator&) = delete;

  /// Run a whole trace to completion (all packets egressed or dropped).
  SimResult run(const Trace& trace);

  /// Streaming variant: pull packets from a TraceSource (generator, mmap'd
  /// file, ...) instead of an in-memory Trace. With the soak sinks set
  /// (SimOptions::egress_sink / fault_drop_sink) memory stays flat
  /// regardless of trace length.
  SimResult run(TraceSource& source);

  /// Resume a checkpointed run: restore the complete simulator state from
  /// an `mp5-checkpoint v1` blob (see mp5/checkpoint.hpp), fast-forward the
  /// source to the checkpoint's trace position, and run to completion. The
  /// simulator must be freshly constructed from the *same program and
  /// semantic options* as the checkpointing run (enforced via the config
  /// fingerprint); engine knobs (threads, fast_forward, sinks, telemetry)
  /// may differ. The returned SimResult is field-by-field identical to the
  /// uninterrupted run's.
  SimResult resume(TraceSource& source, std::string_view checkpoint_blob);

  // -- co-simulation stepping API --
  //
  // A FabricSimulator interleaves N switches on one global clock, feeding
  // each switch's egress into another's ingress mid-run — which run()
  // cannot do (it owns the whole cycle walk). begin/step/finish expose the
  // identical walk under an external clock:
  //
  //   sim.begin(source);
  //   for (Cycle c = 0; ...; ++c) sim.step(c);   // any cycles, any gaps
  //   SimResult r = sim.finish(end_cycle);
  //
  // step(c) executes exactly the per-cycle body of run_loop (faults,
  // arrivals, phantom delivery, ingress, stage walk, remap, watchdog), so
  // a begin/step/finish run over the same source is bit-identical to
  // run(). The bound source may grow between steps (the fabric pushes
  // link deliveries into it); skipped cycles are the caller's fast-forward.
  // Sequential engine only (threads == 1), checkpointing unsupported.

  /// Bind a source and reset per-run results. Throws ConfigError when the
  /// options are incompatible with external clocking (threads > 1 or
  /// checkpoint_interval != 0) and Error if a run is already active.
  void begin(TraceSource& source);
  /// Execute one cycle of the walk at external clock value `now`. Cycles
  /// must be non-decreasing across calls; cycles where the switch is
  /// drained and the source empty may be skipped entirely.
  void step(Cycle now);
  /// True while packets are in flight or the bound source has items.
  bool has_work();
  /// Packets currently inside the switch (queues, slots, FIFOs).
  std::uint64_t live_packets() const { return live_packets_; }
  /// True when no packet *or zombie phantom* occupies any structure — the
  /// precondition for the caller to skip this switch's cycles.
  bool drained() const { return live_packets_ == 0 && fully_drained(); }
  /// End the externally-clocked run at `end_cycle` and return the result
  /// (identical tail to run(): final registers, C1, sorted egress).
  SimResult finish(Cycle end_cycle);

  /// Observable state, for tests.
  const ShardedState& state() const { return *state_; }
  /// The run's packet pool, for tests (recycling/peak-live statistics).
  const PacketArena& arena() const { return arena_; }

  /// Identity of one phantom in flight: a packet can have at most one
  /// phantom per destination (pipeline, stage) cell, so this triple is
  /// unique. (An earlier packed-uint64 encoding `(seq<<16)^(p<<8)^st`
  /// collided: the seq shift XORs into the same bits as p and st, so e.g.
  /// {seq=1<<48} aliased {p=0,st=0} variations — see test_robustness.)
  struct ChannelKey {
    SeqNo seq = kInvalidSeqNo;
    PipelineId pipeline = 0;
    StageId stage = 0;
    bool operator==(const ChannelKey&) const = default;
  };
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const noexcept {
      // splitmix64-style mix of the three fields; no information is
      // discarded before mixing, unlike the old packed key.
      std::uint64_t x = k.seq;
      x ^= (static_cast<std::uint64_t>(k.pipeline) << 32) ^
           (static_cast<std::uint64_t>(k.stage) + 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };

private:
  /// One steered/advanced packet landing in a cell's arrival slots.
  struct ArrivedRef {
    PacketRef ref = kNullPacketRef;
    PipelineId from_lane = 0;
  };

  enum class DropCause : std::uint8_t { kData, kStarved, kFault };

  /// Per-worker staging area for the parallel engine. During the lane
  /// phase a worker may only mutate structures owned by its own lanes
  /// (their FIFOs, their shard of the register state, its packets'
  /// fields); every cross-lane effect is recorded here and applied by the
  /// main thread at the barrier, in worker order — which equals source-
  /// lane order, reproducing the sequential engine's effect order exactly.
  struct WorkerCtx {
    struct Routed {
      PacketRef ref = kNullPacketRef;
      PipelineId dest = 0;
      StageId stage = 0;
      PipelineId from_lane = 0;
    };
    struct StagedDrop {
      PacketRef ref = kNullPacketRef;
      DropCause cause = DropCause::kData;
    };
    /// Deferred phantom-zombie action from a conservative-guard cancel
    /// (the cancelled packet itself keeps flowing).
    struct StagedCancel {
      SeqNo seq = kInvalidSeqNo;
      PipelineId pipeline = 0;
      StageId stage = 0;
      /// Realistic channel: the phantom may still be in flight (or lost).
      bool maybe_in_channel = false;
    };
    std::vector<Routed> routed;
    std::vector<PacketRef> egressed;
    std::vector<StagedDrop> drops;
    std::vector<std::pair<RegId, RegIndex>> completions;
    std::vector<StagedCancel> cancels;
    std::uint64_t blocked = 0;
    std::uint64_t wasted = 0;
    std::uint64_t stalled = 0;
    std::uint64_t steers = 0;
    /// Persists across cycles; absorbed into the C1 checker at run end.
    C1Scratch c1;

    void clear_cycle() {
      routed.clear();
      egressed.clear();
      drops.clear();
      completions.clear();
      cancels.clear();
      blocked = wasted = stalled = steers = 0;
    }
  };

  // -- cell addressing --
  std::size_t cell(PipelineId p, StageId st) const {
    return static_cast<std::size_t>(p) * num_stages_ + st;
  }
  StageFifo& fifo_at(PipelineId p, StageId st) { return fifos_[cell(p, st)]; }
  const StageFifo& fifo_at(PipelineId p, StageId st) const {
    return fifos_[cell(p, st)];
  }
  void push_arrival(PipelineId dest, StageId st, PacketRef ref,
                    PipelineId from_lane);

  void admit(const TraceItem& item, Cycle now);
  void deliver_due_phantoms(Cycle now);
  void step_cell(PipelineId p, StageId st, Cycle now, WorkerCtx* ctx);
  void process_packet(PacketRef ref, PipelineId p, StageId st, bool from_fifo,
                      Cycle now, WorkerCtx* ctx);
  void exec_stage_atoms(Packet& pkt, PipelineId p, StageId st, bool from_fifo,
                        WorkerCtx* ctx);
  void resolve_conservative_guards(Packet& pkt, StageId done_stage,
                                   WorkerCtx* ctx);
  void cancel_entry(Packet& pkt, std::size_t entry_idx, WorkerCtx* ctx);
  void drop_packet(PacketRef ref, DropCause cause, WorkerCtx* ctx);
  void route_onwards(PacketRef ref, PipelineId p, StageId st, Cycle now,
                     WorkerCtx* ctx);
  void egress_packet(PacketRef ref, Cycle now, WorkerCtx* ctx);
  bool work_remaining();

  // -- checkpoint/restore (implemented in checkpoint.cpp) --

  /// The shared cycle walk behind run() and resume().
  SimResult run_loop(TraceSource& source, Cycle start_cycle);
  /// One cycle of the walk: fault events, arrivals, phantom delivery,
  /// ingress, the stage walk, remap, watchdog. Shared verbatim between
  /// run_loop and the external-clock step().
  void step_cycle(Cycle now, bool parallel);
  /// The shared run tail: unbind the source, merge/stop workers, fill the
  /// end-of-run SimResult fields, and sort the egress/fault-drop logs.
  SimResult finalize(Cycle now);
  /// Frame the complete simulator state and hand it to checkpoint_sink.
  void do_checkpoint(Cycle now);
  /// Serialize every piece of run state the cycle walk depends on.
  std::string serialize_state(Cycle now);
  /// Inverse of serialize_state into a freshly constructed simulator.
  /// Returns the checkpointed cycle; `trace_consumed` receives the number
  /// of trace items already admitted (the source skip target).
  Cycle restore_state(ByteReader& r, std::uint64_t& trace_consumed);

  // -- idle-cycle fast-forward --

  /// True when no packet exists anywhere in the switch (queues, arrival
  /// slots, FIFOs) — the precondition for jumping the clock.
  bool fully_drained() const;
  /// Next cycle at which anything can happen: the next trace arrival, the
  /// next phantom-channel delivery, and — while the shard map's window is
  /// dirty or telemetry observes rebalance runs — the next remap boundary.
  Cycle next_event_cycle(Cycle now);

  // -- event engine (SimOptions::engine == kEvent) --
  //
  // One activity bit per (stage, lane) cell, set whenever the cell might
  // hold work (a FIFO entry or a pending arrival slot). Bits are set
  // conservatively and cleared only at a visit that finds the cell empty
  // (or when a whole lane is drained at failure), so a clear bit *proves*
  // the cell is a no-op this cycle — the dense walk's step_cell on it
  // would touch nothing. Stale *set* bits are harmless: the next stepped
  // cycle visits the cell, finds it empty, and clears them.

  void mark_active(PipelineId p, StageId st) {
    active_[static_cast<std::size_t>(st) * lane_words_ + (p >> 6)].fetch_or(
        std::uint64_t{1} << (p & 63), std::memory_order_relaxed);
  }
  void clear_active(PipelineId p, StageId st) {
    active_[static_cast<std::size_t>(st) * lane_words_ + (p >> 6)].fetch_and(
        ~(std::uint64_t{1} << (p & 63)), std::memory_order_relaxed);
  }
  bool cell_active(PipelineId p, StageId st) const {
    return (active_[static_cast<std::size_t>(st) * lane_words_ + (p >> 6)]
                .load(std::memory_order_relaxed) &
            (std::uint64_t{1} << (p & 63))) != 0;
  }
  /// Every activity bit clear: with live_packets_ == 0 this proves the
  /// switch is fully drained (bits are never stale-cleared), without the
  /// per-FIFO scan of fully_drained().
  bool activity_all_clear() const;
  /// Rebuild every bit from the restored FIFO/arrival-slot occupancy
  /// (checkpoint restore) — the bitmap itself is derived state and is
  /// never serialized.
  void rebuild_activity();
  /// Visit the active cells of lanes [lo, hi), last stage first, lanes
  /// ascending within each stage — the dense walk's order minus its
  /// provable no-ops.
  void walk_lanes_event(PipelineId lo, PipelineId hi, Cycle now,
                        WorkerCtx* ctx);
  /// Lockstep counts one stalled cycle per alive stalled cell per cycle,
  /// even when the cell is empty. The event walk skips empty cells, so the
  /// unvisited (bit-clear) stalled cells are counted arithmetically here,
  /// before the walk mutates any bit.
  void account_skipped_stalls(Cycle now);
  /// Event-engine cycle skip target: next_event_cycle further clamped so
  /// no skipped cycle contains a lane fail/recover event or is covered by
  /// a stall window of an alive lane (both are observable per cycle).
  Cycle next_event_cycle_event(Cycle now);

  // -- parallel engine --

  void start_workers();
  void stop_workers();
  void worker_loop(std::uint32_t w, std::uint64_t seen_phase);
  void run_worker_lanes(std::uint32_t w, Cycle now);
  /// Total set activity bits — the dispatch-worthiness estimate for a
  /// parallel event-engine cycle.
  std::uint32_t active_cell_count() const;
  /// Wake the workers whose slot in worker_phase_ was advanced; the others
  /// sleep through the generation.
  void dispatch_workers();
  /// Barrier wait: bounded spin on pending_, then condvar sleep.
  void wait_for_workers();
  /// Apply every worker's staged effects, in worker (== lane) order.
  void merge_worker_effects(Cycle now);
  void apply_staged_cancel(const WorkerCtx::StagedCancel& sc, Cycle now);

  // -- realistic phantom channel (slot pool + lazy-deletion min-heap) --

  struct PendingPhantom {
    SeqNo seq = kInvalidSeqNo;
    RegId reg = 0;
    RegIndex index = kUnresolvedIndex;
    PipelineId pipeline = 0;
    StageId stage = 0;
    PipelineId lane = 0;
    bool cancelled = false;
    /// Nonzero while the slot is live; heap entries carry the stamp they
    /// were pushed with, so a recycled slot invalidates them lazily.
    std::uint64_t stamp = 0;
  };
  struct ChannelDue {
    Cycle deliver = 0;
    SeqNo seq = kInvalidSeqNo;
    std::uint32_t slot = 0;
    std::uint64_t stamp = 0;
  };
  void channel_push(Cycle deliver, const PendingPhantom& rec);
  void channel_free_slot(std::uint32_t slot);
  /// Delivery cycle of the earliest live in-flight phantom (drops stale
  /// heap entries as a side effect).
  std::optional<Cycle> channel_next_deliver();

  // -- fault injection & graceful degradation --

  /// Process every scheduled lane fail/recover event due at or before
  /// `now` (events are pre-sorted; fault_cursor_ tracks progress).
  void apply_fault_events(Cycle now);
  /// Lane death: quarantine the lane, drop its in-flight packets and every
  /// packet elsewhere that is doomed to visit it, then atomically re-home
  /// its active shard indices to survivors.
  void fail_lane(PipelineId p, Cycle now);
  void recover_lane(PipelineId p, Cycle now);
  /// Spray target for an admitted packet: round-robin over live lanes.
  PipelineId spray_lane(SeqNo seq) const;
  /// Cycle-end watchdog (SimOptions::paranoid_checks).
  void check_invariants(Cycle now) const;
  void emit(TimelineEvent::Kind kind, Cycle now, PipelineId p, StageId st,
            SeqNo seq, std::uint64_t arg = 0) const {
    if (telem_ == nullptr && !opts_.timeline) return;
    TimelineEvent event;
    event.kind = kind;
    event.cycle = now;
    event.pipeline = p;
    event.stage = st;
    event.seq = seq;
    event.arg = arg;
    if (telem_ != nullptr) telem_->record(event);
    if (opts_.timeline) opts_.timeline(event);
  }

  const Mp5Program* prog_;
  SimOptions opts_;
  StageId num_stages_;
  std::uint32_t k_;

  PacketArena arena_;
  std::unique_ptr<ShardedState> state_;
  std::vector<StageFifo> fifos_; // flat [pipeline * num_stages + stage]

  /// Dense per-cell arrival buffers: each (pipeline, stage) cell owns a
  /// fixed stride of k slots (a cell can receive at most one packet from
  /// each same-stage predecessor cell per cycle, and stage 0 receives at
  /// most one ingress packet).
  std::vector<ArrivedRef> arrival_slots_; // [cell * k + i]
  std::vector<std::uint32_t> arrival_count_; // per cell

  std::vector<std::deque<PacketRef>> ingress_;

  std::vector<PendingPhantom> channel_slots_;
  std::vector<std::uint32_t> channel_free_;
  std::vector<ChannelDue> channel_heap_; // min-heap by (deliver, seq)
  std::unordered_map<ChannelKey, std::uint32_t, ChannelKeyHash>
      channel_index_; // (seq, pipeline, stage) -> live slot
  std::uint64_t channel_next_stamp_ = 1;
  std::size_t channel_live_ = 0;
  std::vector<PendingPhantom> due_scratch_; // reused by deliver_due_phantoms

  TraceSource* source_ = nullptr; // non-owning, valid during run_loop only
  Cycle next_checkpoint_ = 0;     // next cycle boundary to checkpoint at
  SeqNo next_seq_ = 0;
  std::uint64_t live_packets_ = 0;
  // (Remap-boundary observability lives in ShardedState::window_dirty()
  // now — the shard map knows which registers the next rebalance resets.)

  // -- event engine state --
  bool event_engine_ = false;       // opts_.engine == SimEngine::kEvent
  std::uint32_t lane_words_ = 1;    // ceil(k_ / 64)
  /// Activity bitmap, [stage * lane_words_ + (lane >> 6)]. Atomic because
  /// parallel workers clear their own lanes' bits concurrently, and two
  /// workers' lane blocks can share one 64-bit word; all accesses are
  /// relaxed — cross-thread visibility rides on the cycle barrier.
  std::vector<std::atomic<std::uint64_t>> active_;

  // -- parallel engine state --
  std::uint32_t workers_ = 1; // min(opts_.threads, k_), fixed per run
  std::vector<WorkerCtx> worker_ctx_;
  std::vector<std::pair<PipelineId, PipelineId>> lane_range_; // [lo, hi) per worker
  /// Per-worker (word index, lane mask) cover of its lane block, for the
  /// event engine's O(stages x words) per-cycle busy-worker scan.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
      worker_masks_;
  std::vector<std::uint8_t> busy_scratch_; // per-worker busy flag, per cycle
  std::vector<std::uint64_t> busy_words_;  // per-word OR across stage rows
  std::vector<std::thread> pool_;
  std::vector<std::exception_ptr> worker_error_;
  /// Per-worker dispatch generation (slot 0 unused — worker 0 is the main
  /// thread). A worker runs one lane phase each time its slot advances;
  /// the event engine advances only the busy workers' slots, so idle
  /// workers sleep through the generation entirely.
  std::vector<std::atomic<std::uint64_t>> worker_phase_;
  std::uint64_t next_phase_ = 0; // main-thread view of the generation
  std::atomic<std::uint32_t> pending_{0};
  std::atomic<bool> stop_{false};
  /// Workers spin briefly on their phase slot, then block here — a pool
  /// idling between dispatches (or parked by the event engine) costs no
  /// CPU instead of burning a core per worker.
  std::mutex pool_mtx_;
  std::condition_variable cv_dispatch_;
  std::condition_variable cv_done_;
  Cycle shared_now_ = 0;

  // -- fault state --
  FaultSchedule fault_sched_;
  std::size_t fault_cursor_ = 0;  // into fault_sched_.lane_events()
  Rng fault_rng_{0};              // phantom loss/delay coin flips
  std::vector<bool> lane_alive_;  // mirrors ShardedState liveness
  std::size_t current_pressure_ = 0;
  /// Phantoms lost on the channel: their data packets are orphans and must
  /// be dropped as faults (not as regular data drops) when they reach the
  /// stateful stage. Erased on detection or cancellation. Partitioned by
  /// destination lane so a parallel worker only touches its own set.
  std::vector<std::unordered_set<ChannelKey, ChannelKeyHash>> lost_phantoms_;
  /// Most recent lane-failure cycle with no egress since; kInvalidSeqNo-like
  /// sentinel via awaiting flag. Feeds SimResult::time_to_recover.
  Cycle fail_marker_ = 0;
  bool awaiting_egress_after_failure_ = false;

  SimResult result_;
  C1Checker c1_;
  std::unordered_map<std::uint64_t, SeqNo> flow_last_egress_;

  // -- telemetry (see src/telemetry/): registry-owned hooks, all null on a
  // telemetry-disabled run, where every hook is a never-taken branch and
  // the SimResult is bit-identical to a build without telemetry. --
  telemetry::Telemetry* telem_ = nullptr;
  telemetry::Scope tscope_; // telem_ + SimOptions::telemetry_prefix
  telemetry::Counter* t_admit_ = nullptr;
  telemetry::Counter* t_egress_ = nullptr;
  telemetry::Counter* t_steer_ = nullptr;
  telemetry::Counter* t_drop_data_ = nullptr;
  telemetry::Counter* t_drop_starved_ = nullptr;
  telemetry::Counter* t_drop_fault_ = nullptr;
  telemetry::Counter* t_ecn_ = nullptr;
  telemetry::Counter* t_stall_cycles_ = nullptr;
  telemetry::Counter* t_phantom_sent_ = nullptr;
  telemetry::Counter* t_phantom_lost_ = nullptr;
  telemetry::Counter* t_phantom_delayed_ = nullptr;
  telemetry::Counter* t_lane_fail_ = nullptr;
  telemetry::Counter* t_lane_recover_ = nullptr;
  Histogram* t_egress_latency_ = nullptr; // cycles from arrival to egress
};

} // namespace mp5
