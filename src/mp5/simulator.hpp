// Cycle-accurate simulator of the MP5 switch architecture (§3.2, Figure 4).
//
// Model, per clock cycle:
//   1. Arrivals: packets whose arrival time falls in this cycle are
//      admitted in (time, port) order. Each is assigned a global sequence
//      number, run through the compiled address-resolution logic (the
//      hoisted stateless slices), given its access plan
//      <reg, index, pipeline, stage> via the index-to-pipeline map, and
//      sprayed round-robin across pipeline ingress queues. Phantom packets
//      are generated immediately (§3.3 "phantom packets are generated on
//      packet arrival") and delivered over the phantom channel to their
//      destination stage FIFOs — the channel does no processing en route
//      (Invariant 1), modeled as same-cycle delivery in arrival order.
//   2. Each pipeline admits one packet per cycle from its ingress queue
//      into the address-resolution stage (transformed stage 0).
//   3. Every (pipeline, stage) cell processes at most one packet:
//      a packet arriving for stateful processing here replaces its phantom
//      in the logical FIFO (`insert`, not a processing slot); an arriving
//      stateless pass-through packet is processed with priority
//      (Invariant 2); otherwise the cell pops the FIFO — a phantom head
//      blocks, a cancelled phantom costs the wasted cycle of §3.3, a data
//      head executes the stage's atoms. Processed packets advance one
//      stage, steering through the crossbar when their next access lives
//      in another pipeline (D3).
//   4. Every remap period, the dynamic sharding heuristic (Figure 6) moves
//      register indexes between pipelines (in-flight guarded) and resets
//      the access counters.
//
// The same class implements the ablations (no-D4, static sharding, naive
// single-pipeline, ideal) via SimOptions; the recirculation baseline has
// its own simulator in src/baseline.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "banzai/ir.hpp"
#include "common/rng.hpp"
#include "metrics/c1_checker.hpp"
#include "metrics/sim_result.hpp"
#include "mp5/faults.hpp"
#include "mp5/options.hpp"
#include "mp5/shard_map.hpp"
#include "mp5/stage_fifo.hpp"
#include "mp5/transform.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace mp5 {

class Mp5Simulator {
public:
  Mp5Simulator(const Mp5Program& program, const SimOptions& options);

  /// Run a whole trace to completion (all packets egressed or dropped).
  SimResult run(const Trace& trace);

  /// Observable state, for tests.
  const ShardedState& state() const { return *state_; }

  /// Identity of one phantom in flight: a packet can have at most one
  /// phantom per destination (pipeline, stage) cell, so this triple is
  /// unique. (An earlier packed-uint64 encoding `(seq<<16)^(p<<8)^st`
  /// collided: the seq shift XORs into the same bits as p and st, so e.g.
  /// {seq=1<<48} aliased {p=0,st=0} variations — see test_robustness.)
  struct ChannelKey {
    SeqNo seq = kInvalidSeqNo;
    PipelineId pipeline = 0;
    StageId stage = 0;
    bool operator==(const ChannelKey&) const = default;
  };
  struct ChannelKeyHash {
    std::size_t operator()(const ChannelKey& k) const noexcept {
      // splitmix64-style mix of the three fields; no information is
      // discarded before mixing, unlike the old packed key.
      std::uint64_t x = k.seq;
      x ^= (static_cast<std::uint64_t>(k.pipeline) << 32) ^
           (static_cast<std::uint64_t>(k.stage) + 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<std::size_t>(x);
    }
  };

private:
  struct Arrived {
    Packet packet;
    PipelineId from_lane = 0;
  };

  void admit(const TraceItem& item, Cycle now);
  void deliver_due_phantoms(Cycle now);
  void step_cell(PipelineId p, StageId st, Cycle now);
  void process_packet(Packet pkt, PipelineId p, StageId st, bool from_fifo,
                      Cycle now);
  void exec_stage_atoms(Packet& pkt, PipelineId p, StageId st, bool from_fifo);
  void resolve_conservative_guards(Packet& pkt, StageId done_stage);
  void cancel_entry(Packet& pkt, std::size_t entry_idx);
  enum class DropCause : std::uint8_t { kData, kStarved, kFault };
  void drop_packet(Packet&& pkt, DropCause cause);
  void route_onwards(Packet&& pkt, PipelineId p, StageId st, Cycle now);
  void egress_packet(Packet&& pkt, Cycle now);
  bool work_remaining() const;

  // -- fault injection & graceful degradation --

  /// Process every scheduled lane fail/recover event due at or before
  /// `now` (events are pre-sorted; fault_cursor_ tracks progress).
  void apply_fault_events(Cycle now);
  /// Lane death: quarantine the lane, drop its in-flight packets and every
  /// packet elsewhere that is doomed to visit it, then atomically re-home
  /// its active shard indices to survivors.
  void fail_lane(PipelineId p, Cycle now);
  void recover_lane(PipelineId p, Cycle now);
  /// Spray target for an admitted packet: round-robin over live lanes.
  PipelineId spray_lane(SeqNo seq) const;
  /// Cycle-end watchdog (SimOptions::paranoid_checks).
  void check_invariants(Cycle now) const;
  void emit(TimelineEvent::Kind kind, Cycle now, PipelineId p, StageId st,
            SeqNo seq, std::uint64_t arg = 0) const {
    if (telem_ == nullptr && !opts_.timeline) return;
    TimelineEvent event;
    event.kind = kind;
    event.cycle = now;
    event.pipeline = p;
    event.stage = st;
    event.seq = seq;
    event.arg = arg;
    if (telem_ != nullptr) telem_->record(event);
    if (opts_.timeline) opts_.timeline(event);
  }

  const Mp5Program* prog_;
  SimOptions opts_;
  StageId num_stages_;
  std::uint32_t k_;

  std::unique_ptr<ShardedState> state_;
  std::vector<std::vector<StageFifo>> fifos_;    // [pipeline][stage]
  std::vector<std::vector<std::vector<Arrived>>> arrivals_; // [pipeline][stage]
  std::vector<std::deque<Packet>> ingress_;

  /// Realistic phantom channel: phantoms in flight, keyed by delivery
  /// cycle; each carries its destination FIFO coordinates.
  struct PendingPhantom {
    SeqNo seq = kInvalidSeqNo;
    RegId reg = 0;
    RegIndex index = kUnresolvedIndex;
    PipelineId pipeline = 0;
    StageId stage = 0;
    PipelineId lane = 0;
    bool cancelled = false;
  };
  std::multimap<Cycle, PendingPhantom> channel_;
  std::unordered_map<ChannelKey, std::multimap<Cycle, PendingPhantom>::iterator,
                     ChannelKeyHash>
      channel_index_; // (seq, pipeline, stage) -> in-flight record

  const Trace* trace_ = nullptr;
  std::size_t cursor_ = 0;
  SeqNo next_seq_ = 0;
  std::uint64_t live_packets_ = 0;

  // -- fault state --
  FaultSchedule fault_sched_;
  std::size_t fault_cursor_ = 0;  // into fault_sched_.lane_events()
  Rng fault_rng_{0};              // phantom loss/delay coin flips
  std::vector<bool> lane_alive_;  // mirrors ShardedState liveness
  std::size_t current_pressure_ = 0;
  /// Phantoms lost on the channel: their data packets are orphans and must
  /// be dropped as faults (not as regular data drops) when they reach the
  /// stateful stage. Erased on detection or cancellation.
  std::unordered_set<ChannelKey, ChannelKeyHash> lost_phantoms_;
  /// Most recent lane-failure cycle with no egress since; kInvalidSeqNo-like
  /// sentinel via awaiting flag. Feeds SimResult::time_to_recover.
  Cycle fail_marker_ = 0;
  bool awaiting_egress_after_failure_ = false;

  SimResult result_;
  C1Checker c1_;
  std::unordered_map<std::uint64_t, SeqNo> flow_last_egress_;

  // -- telemetry (see src/telemetry/): registry-owned hooks, all null on a
  // telemetry-disabled run, where every hook is a never-taken branch and
  // the SimResult is bit-identical to a build without telemetry. --
  telemetry::Telemetry* telem_ = nullptr;
  telemetry::Counter* t_admit_ = nullptr;
  telemetry::Counter* t_egress_ = nullptr;
  telemetry::Counter* t_steer_ = nullptr;
  telemetry::Counter* t_drop_data_ = nullptr;
  telemetry::Counter* t_drop_starved_ = nullptr;
  telemetry::Counter* t_drop_fault_ = nullptr;
  telemetry::Counter* t_ecn_ = nullptr;
  telemetry::Counter* t_stall_cycles_ = nullptr;
  telemetry::Counter* t_phantom_sent_ = nullptr;
  telemetry::Counter* t_phantom_lost_ = nullptr;
  telemetry::Counter* t_phantom_delayed_ = nullptr;
  telemetry::Counter* t_lane_fail_ = nullptr;
  telemetry::Counter* t_lane_recover_ = nullptr;
  Histogram* t_egress_latency_ = nullptr; // cycles from arrival to egress
};

} // namespace mp5
