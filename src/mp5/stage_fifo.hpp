// The logical FIFO at the input of one (pipeline, stage) cell (§3.2).
//
// Physically k independent ring buffers (one per source pipeline, to
// absorb up to k same-cycle crossbar arrivals); logically a single FIFO
// with three operations:
//   push(pkt, fifo_id)         — phantom (or baseline data) tail append;
//                                 dropped when the bounded FIFO is full.
//   insert(pkt, addr, fifo_id) — replace a queued phantom in place with
//                                 its data packet (addr from a directory
//                                 keyed by the packet id).
//   pop()                      — among the k lane heads, take the entry
//                                 with the smallest timestamp; a phantom
//                                 head blocks (that is how D4 enforces
//                                 arrival-order state access), a cancelled
//                                 phantom head costs one wasted cycle.
//
// Timestamps are the packets' global arrival sequence numbers. Within one
// lane, phantoms are pushed in arrival order, so every lane is seq-sorted
// and the smallest-head rule yields global arrival order.
//
// The `ideal` mode implements the no-head-of-line-blocking upper bound of
// §3.5.2/§4.3.3: ordering is enforced per register index rather than per
// stage (as if there were one FIFO per index), and cancelled phantoms are
// reclaimed for free.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/types.hpp"
#include "packet/packet.hpp"

namespace mp5 {

class ByteReader;
class ByteWriter;
class Histogram;

namespace telemetry {
class Counter;
class Scope;
}

class StageFifo {
public:
  /// capacity: per-lane entry budget; 0 = unbounded (the simulator's
  /// adaptive no-loss configuration, §4.3.1).
  StageFifo(std::uint32_t lanes, std::size_t capacity, bool ideal);

  /// Returns false when the phantom was dropped (lane full).
  bool push_phantom(SeqNo seq, RegId reg, RegIndex index, PipelineId lane,
                    Cycle now = 0);

  /// Enqueue cycle of the oldest lane-head entry, if any — the age input
  /// to the §3.4 starvation guard.
  std::optional<Cycle> oldest_head_enqueue() const;

  bool has_phantom(SeqNo seq) const { return directory_.count(seq) != 0; }

  /// Replace the packet's phantom with the packet itself (by arena ref;
  /// the FIFO never dereferences packet contents). Returns false if the
  /// phantom is absent (it was dropped at push time) — the caller must
  /// drop the data packet (§3.4 "handling packet drops").
  bool insert_data(SeqNo seq, PacketRef ref);

  /// Cancel the phantom of a conservative access whose guard evaluated
  /// false (§3.3). No-op if the phantom was dropped.
  void cancel(SeqNo seq);

  struct PopResult {
    enum class Kind : std::uint8_t {
      kIdle,    // FIFO empty: nothing to do
      kBlocked, // head is a phantom: wait for its data packet
      kWasted,  // head was a cancelled phantom: slot consumed reclaiming it
      kData,    // a data packet was dequeued into `ref`
    };
    Kind kind = Kind::kIdle;
    PacketRef ref = kNullPacketRef;
  };

  PopResult pop();

  std::size_t size() const { return live_entries_; }
  std::size_t high_water() const { return high_water_; }

  /// Attach the telemetry registry (see src/telemetry/): the FIFO caches
  /// pointers to the switch-wide "fifo.*" counters and the occupancy
  /// histogram, shared by every StageFifo instance of the run. Never
  /// called on a telemetry-disabled run — all hook pointers stay null and
  /// each hook is a single never-taken branch.
  void set_telemetry(const telemetry::Scope& sink);

  // -- fault injection & watchdog support --

  /// Clamp the effective per-lane capacity (forced FIFO pressure fault):
  /// while nonzero, push_phantom fails once the target lane already holds
  /// `cap` entries, even in the unbounded configuration. 0 disables.
  void set_pressure_capacity(std::size_t cap) { pressure_ = cap; }

  /// Empty the FIFO completely (lane death): every queued data packet is
  /// returned to the caller for drop accounting; phantoms and cancelled
  /// entries die with the lane.
  std::vector<PacketRef> drain_all();

  /// Remove every queued data packet matching `pred`, converting its slot
  /// to a cancelled entry (reclaimed by the normal wasted-pop path, so
  /// FIFO addressing stays intact). Used to purge packets doomed by a
  /// remote lane failure. Returns the extracted packet refs.
  std::vector<PacketRef> extract_data_if(
      const std::function<bool(PacketRef)>& pred);

  /// Visit every queued entry (any kind), in no particular order.
  void for_each_entry(const std::function<void(const FifoEntry&)>& fn) const;

  /// Watchdog: verify internal consistency — occupancy accounting,
  /// per-lane seq ordering (`check_order`; Invariant 1 implies each
  /// source lane is seq-sorted, but injected phantom delays legitimately
  /// break it), and phantom-directory coherence. Throws InvariantError.
  void check_invariants(Cycle now, bool check_order = true) const;

  // -- checkpoint/restore --

  /// Serialize queued entries, the phantom directory (with exact ring
  /// virtual indexes), and occupancy stats. Hash-map contents are written
  /// in a sorted order so the payload is byte-stable across runs.
  void save(ByteWriter& w) const;
  /// Restore into a freshly constructed (empty) StageFifo of the same
  /// configuration; throws Error on any structural mismatch.
  void load(ByteReader& r);

private:
  using IndexKey = std::uint64_t; // (reg << 32) | index

  static IndexKey make_key(RegId reg, RegIndex index) {
    return (static_cast<std::uint64_t>(reg) << 32) | index;
  }

  PopResult pop_lanes();
  PopResult pop_ideal();
  /// Drop cancelled entries from the front of an ideal per-index queue
  /// (free in the ideal design) and register a data head as eligible.
  void ideal_settle_front(IndexKey key);

  bool ideal_;
  std::vector<RingFifo<FifoEntry>> lanes_;
  /// Ideal mode: one FIFO per register index (each seq-ordered), plus the
  /// set of index heads that are data packets, ordered by seq.
  std::map<IndexKey, std::deque<FifoEntry>> queues_;
  std::map<SeqNo, IndexKey> eligible_;
  std::unordered_map<SeqNo, IndexKey> seq_key_;
  struct Address {
    PipelineId lane;
    std::uint64_t vidx;
  };
  std::unordered_map<SeqNo, Address> directory_;
  std::size_t live_entries_ = 0;
  std::size_t high_water_ = 0;
  std::size_t pressure_ = 0; // forced capacity clamp; 0 = off

  // -- telemetry hooks (registry-owned; null when telemetry is off) --
  telemetry::Counter* t_push_ = nullptr;
  telemetry::Counter* t_push_dropped_ = nullptr;
  telemetry::Counter* t_insert_ = nullptr;
  telemetry::Counter* t_cancel_ = nullptr;
  telemetry::Counter* t_pop_data_ = nullptr;
  telemetry::Counter* t_pop_wasted_ = nullptr;
  telemetry::Counter* t_pop_blocked_ = nullptr;
  Histogram* t_depth_ = nullptr; // occupancy sampled at each push
};

} // namespace mp5
