#include "mp5/admissibility.hpp"

#include <algorithm>
#include <unordered_map>

#include "packet/packet.hpp"

namespace mp5 {
namespace {

/// Register file stub for the (pure) resolver instructions.
class NullRegs final : public ir::RegFile {
public:
  Value read(RegId, RegIndex) override { return 0; }
  void write(RegId, RegIndex, Value) override {}
};

} // namespace

AdmissibilityReport analyze_admissibility(const Mp5Program& program,
                                          const Trace& trace,
                                          std::uint32_t pipelines) {
  AdmissibilityReport report;
  if (trace.empty() || pipelines == 0) return report;

  NullRegs regs;
  std::unordered_map<std::uint64_t, std::uint64_t> state_hits;
  std::unordered_map<StageId, std::uint64_t> stage_hits;

  for (const auto& item : trace) {
    std::vector<Value> headers(program.pvsm.num_slots(), 0);
    for (std::size_t i = 0; i < item.fields.size() && i < headers.size();
         ++i) {
      headers[i] = item.fields[i];
    }
    for (const auto& instr : program.resolver) {
      ir::exec_instr(instr, headers, regs, program.pvsm.registers);
    }
    for (const auto& desc : program.accesses) {
      if (desc.guard != ir::kNoSlot && desc.guard_resolvable) {
        const bool truthy =
            headers[static_cast<std::size_t>(desc.guard)] != 0;
        if (desc.guard_negate ? truthy : !truthy) continue;
      }
      const RegIndex index =
          desc.index_resolvable
              ? ir::resolve_index(desc.index, headers,
                                  program.pvsm.registers[desc.reg].size)
              : kUnresolvedIndex; // pinned array: one serial pool
      ++state_hits[(static_cast<std::uint64_t>(desc.reg) << 32) | index];
      ++stage_hits[desc.stage];
    }
  }

  const double n = static_cast<double>(trace.size());
  for (const auto& [key, hits] : state_hits) {
    const double fraction = static_cast<double>(hits) / n;
    if (fraction > report.hottest_state_fraction) {
      report.hottest_state_fraction = fraction;
      report.hottest_reg = static_cast<RegId>(key >> 32);
      report.hottest_index = static_cast<RegIndex>(key & 0xffffffffu);
    }
  }
  for (const auto& [stage, hits] : stage_hits) {
    const double load = static_cast<double>(hits) / n;
    if (load > report.hottest_stage_load) {
      report.hottest_stage_load = load;
      report.hottest_stage = stage;
    }
  }

  double bound = 1.0;
  if (report.hottest_state_fraction > 0.0) {
    bound = std::min(bound, 1.0 / (pipelines * report.hottest_state_fraction));
  }
  if (report.hottest_stage_load > 0.0) {
    bound = std::min(bound, 1.0 / report.hottest_stage_load);
  }
  report.bound = std::min(1.0, bound);
  return report;
}

} // namespace mp5
