#include "mp5/transform.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/error.hpp"

namespace mp5 {
namespace {

using ir::Operand;
using ir::Slot;
using ir::TacInstr;
using ir::TacOp;

/// One linearized instruction with its location in the PVSM.
struct Located {
  const TacInstr* instr;
  StageId stage; // original PVSM stage numbering
  std::size_t linear;
};

std::vector<Slot> input_slots(const TacInstr& instr) {
  std::vector<Slot> slots;
  auto add = [&](const Operand& op) {
    if (!op.is_const) slots.push_back(op.slot);
  };
  add(instr.a);
  add(instr.b);
  add(instr.c);
  for (const auto& arg : instr.hash_args) add(arg);
  add(instr.index);
  if (instr.guard != ir::kNoSlot) slots.push_back(instr.guard);
  return slots;
}

struct SliceResult {
  bool stateless = true;
  /// Max original stage among contributing instructions (0 if none, i.e.
  /// the slot is a declared field / constant known at arrival).
  StageId known_after_original_stage = 0;
  bool has_producers = false;
  std::vector<std::size_t> members; // linear instruction ids
};

class Transformer {
public:
  Transformer(const ir::Pvsm& pvsm, const TransformOptions& options)
      : options_(options) {
    out_.pvsm = pvsm;
  }

  Mp5Program run() {
    linearize();
    collect_accesses();
    apply_pinning_rules();
    build_resolver();
    if (options_.add_flow_order_stage) append_flow_order_stage();
    std::sort(out_.accesses.begin(), out_.accesses.end(),
              [](const AccessDescriptor& a, const AccessDescriptor& b) {
                return a.stage < b.stage;
              });
    out_.num_stages =
        static_cast<StageId>(out_.pvsm.stages.size()) + 1; // + AR stage
    return std::move(out_);
  }

private:
  void linearize() {
    for (StageId s = 0; s < out_.pvsm.stages.size(); ++s) {
      for (const auto& atom : out_.pvsm.stages[s].atoms) {
        for (const auto& instr : atom.body) {
          Located loc{&instr, s, linear_.size()};
          if (instr.dst != ir::kNoSlot) {
            defs_of_[instr.dst].push_back(linear_.size());
          }
          linear_.push_back(loc);
        }
      }
    }
  }

  /// Defining instruction of `slot` as seen by a use at `use_pos`, i.e.
  /// the last def strictly before the use. Slots are single-assignment
  /// except canonical fields, whose trailing egress copy must not shadow
  /// the arrival value for earlier uses.
  std::optional<std::size_t> def_before(Slot slot, std::size_t use_pos) const {
    auto it = defs_of_.find(slot);
    if (it == defs_of_.end()) return std::nullopt;
    std::optional<std::size_t> best;
    for (const std::size_t d : it->second) {
      if (d < use_pos) best = d;
    }
    return best;
  }

  /// Backward slice of a slot (used at `use_pos`) through the dataflow.
  SliceResult slice_of(Slot slot, std::size_t use_pos) {
    SliceResult result;
    if (slot == ir::kNoSlot) return result;
    std::vector<std::pair<Slot, std::size_t>> work{{slot, use_pos}};
    std::set<std::size_t> seen;
    while (!work.empty()) {
      const auto [s, pos] = work.back();
      work.pop_back();
      const auto def = def_before(s, pos);
      if (!def) continue; // declared field: available at arrival
      if (!seen.insert(*def).second) continue;
      const Located& loc = linear_[*def];
      result.has_producers = true;
      result.known_after_original_stage =
          std::max(result.known_after_original_stage, loc.stage);
      if (loc.instr->op == TacOp::kRegRead) {
        result.stateless = false;
        continue; // do not pull the read's inputs into the resolver slice
      }
      result.members.push_back(*def);
      for (const Slot in : input_slots(*loc.instr)) {
        work.emplace_back(in, *def);
      }
    }
    return result;
  }

  SliceResult slice_of_operand(const Operand& op, std::size_t use_pos) {
    return op.is_const ? SliceResult{} : slice_of(op.slot, use_pos);
  }

  void collect_accesses() {
    out_.shardable.assign(out_.pvsm.registers.size(), true);
    std::size_t linear_pos = 0; // mirrors linearize() traversal order
    for (StageId s = 0; s < out_.pvsm.stages.size(); ++s) {
      for (const auto& atom : out_.pvsm.stages[s].atoms) {
        const std::size_t atom_first = linear_pos;
        linear_pos += atom.body.size();
        if (!atom.stateful()) continue;
        AccessDescriptor desc;
        desc.reg = atom.reg;
        desc.stage = s + 1; // shift past the AR stage
        desc.index = atom.index;
        desc.guard = atom.guard;
        desc.guard_negate = atom.guard_negate;

        const SliceResult index_slice =
            slice_of_operand(atom.index, atom_first);
        desc.index_resolvable = index_slice.stateless;
        if (!index_slice.stateless) {
          // §3.3: stateful index computation -> no sharding for this array.
          out_.shardable[atom.reg] = false;
        } else {
          add_to_resolver(index_slice);
        }

        if (atom.guard != ir::kNoSlot) {
          const SliceResult guard_slice = slice_of(atom.guard, atom_first);
          desc.guard_resolvable = guard_slice.stateless;
          if (guard_slice.stateless) {
            add_to_resolver(guard_slice);
          } else {
            // Guard becomes known once the packet has been processed at the
            // producing stage (+1 for the AR shift).
            desc.guard_known_after_stage =
                guard_slice.known_after_original_stage + 1;
            if (desc.guard_known_after_stage >= desc.stage) {
              throw Error(
                  "transform: guard for register '" +
                  out_.pvsm.registers[atom.reg].name +
                  "' resolves at or after its own stage; pipelining bug");
            }
          }
        }
        out_.accesses.push_back(desc);
      }
    }
  }

  /// Pin register arrays that share a stage with a non-mutually-exclusive
  /// stateful atom: the packet can only be in one pipeline per stage, so
  /// these arrays must live together in a single pipeline (§3.3).
  void apply_pinning_rules() {
    for (const auto& stage : out_.pvsm.stages) {
      std::vector<const ir::Atom*> stateful;
      for (const auto& atom : stage.atoms) {
        if (atom.stateful()) stateful.push_back(&atom);
      }
      if (stateful.size() < 2) continue;
      auto exclusive = [](const ir::Atom& a, const ir::Atom& b) {
        return a.guard != ir::kNoSlot && b.guard != ir::kNoSlot &&
               a.guard == b.guard && a.guard_negate != b.guard_negate;
      };
      for (std::size_t i = 0; i < stateful.size(); ++i) {
        for (std::size_t j = i + 1; j < stateful.size(); ++j) {
          if (!exclusive(*stateful[i], *stateful[j])) {
            out_.shardable[stateful[i]->reg] = false;
            out_.shardable[stateful[j]->reg] = false;
          }
        }
      }
    }
  }

  void add_to_resolver(const SliceResult& slice) {
    for (const std::size_t id : slice.members) resolver_ids_.insert(id);
  }

  void build_resolver() {
    // Linear (program) order is a topological order of the dataflow, so
    // emitting the slice instructions sorted by linear id is executable.
    for (const std::size_t id : resolver_ids_) {
      out_.resolver.push_back(*linear_[id].instr);
    }
  }

  void append_flow_order_stage() {
    if (options_.flow_fields.empty()) {
      throw ConfigError("flow-order stage requested without flow fields");
    }
    // Hidden register + hidden index slot.
    ir::RegisterSpec spec;
    spec.name = "$flow_order";
    spec.size = std::max<std::size_t>(1, options_.flow_order_reg_size);
    out_.flow_order_reg = static_cast<RegId>(out_.pvsm.registers.size());
    out_.pvsm.registers.push_back(spec);
    out_.shardable.push_back(true);

    out_.pvsm.fields.push_back(ir::FieldInfo{"$flow_idx", false});
    const Slot idx_slot = static_cast<Slot>(out_.pvsm.fields.size() - 1);

    // Resolver computes hash(flow fields) into the hidden slot.
    TacInstr hash;
    hash.op = TacOp::kHash;
    hash.dst = idx_slot;
    for (const auto& field : options_.flow_fields) {
      hash.hash_args.push_back(
          Operand::make_slot(out_.pvsm.slot_of(field)));
    }
    out_.resolver.push_back(hash);

    // Appended ordering stage: a stateful atom with an empty body — it
    // orders packets (via phantom/FIFO machinery) without touching data.
    ir::Stage stage;
    ir::Atom atom;
    atom.reg = out_.flow_order_reg;
    atom.index = Operand::make_slot(idx_slot);
    stage.atoms.push_back(std::move(atom));
    out_.pvsm.stages.push_back(std::move(stage));

    AccessDescriptor desc;
    desc.reg = out_.flow_order_reg;
    desc.stage = static_cast<StageId>(out_.pvsm.stages.size()); // last + AR
    desc.index = Operand::make_slot(idx_slot);
    desc.index_resolvable = true;
    out_.accesses.push_back(desc);
    out_.has_flow_order = true;
  }

  TransformOptions options_;
  Mp5Program out_;
  std::vector<Located> linear_;
  std::unordered_map<Slot, std::vector<std::size_t>> defs_of_;
  std::set<std::size_t> resolver_ids_;
};

} // namespace

std::size_t Mp5Program::conservative_accesses() const {
  std::size_t n = 0;
  for (const auto& a : accesses) {
    if (a.guard != ir::kNoSlot && !a.guard_resolvable) ++n;
  }
  return n;
}

std::size_t Mp5Program::pinned_registers() const {
  std::size_t n = 0;
  for (const bool s : shardable) {
    if (!s) ++n;
  }
  return n;
}

Mp5Program transform(const ir::Pvsm& pvsm, const TransformOptions& options) {
  return Transformer(pvsm, options).run();
}

} // namespace mp5
