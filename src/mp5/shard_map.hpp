// Dynamically sharded shared register state (design principle D2, §3.4).
//
// The compiler allocates a full copy of every register array in the same
// stage of each pipeline, but at runtime each index is "active" in exactly
// one pipeline; the index-to-pipeline map tracks where. MP5 maintains a
// per-index packet-access counter (incremented at address resolution) and
// an in-flight counter (incremented at resolution, decremented once the
// packet has performed the access), and periodically rebalances with the
// Figure 6 heuristic. An index is only moved when its in-flight counter is
// zero, so steering tags in flight never go stale.
//
// Because accesses are only ever performed at an index's active pipeline,
// the simulator stores a single flat value per index; the per-pipeline
// replicas of the paper differ only physically, not observably.
#pragma once

#include <cstdint>
#include <vector>

#include "banzai/ir.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace mp5 {

namespace telemetry {
class Counter;
class Telemetry;
}

enum class ShardingPolicy {
  /// Figure 6 heuristic every remap period (the MP5 default).
  kDynamic,
  /// Random compile-time sharding, never updated (the no-D2 baseline of
  /// §4.3.2).
  kStaticRandom,
  /// Everything in pipeline 0 (the naive shared-memory design of D1).
  kSinglePipeline,
  /// Near-optimal rebalancing: full greedy LPT re-shard each period
  /// (the "optimal bin packing" side of the ideal baseline, §4.3.3).
  kIdealLpt,
};

class ShardedState final : public ir::RegFile {
public:
  ShardedState(const std::vector<ir::RegisterSpec>& specs,
               const std::vector<bool>& shardable, std::uint32_t pipelines,
               ShardingPolicy policy, Rng rng);

  // -- RegFile (flat storage; see header comment) --
  Value read(RegId reg, RegIndex index) override;
  void write(RegId reg, RegIndex index, Value v) override;

  /// Active pipeline of (reg, index). Pinned arrays always map to the pin
  /// pipeline regardless of index (callers may pass kUnresolvedIndex).
  PipelineId pipeline_of(RegId reg, RegIndex index) const;

  bool shardable(RegId reg) const { return shardable_[reg]; }
  PipelineId pin_pipeline() const { return pin_; }

  // -- lane liveness (fault injection / graceful degradation) --

  /// Quarantine a failed lane: every index active there is atomically
  /// re-homed to the least-loaded surviving lane, and the pin pipeline
  /// moves if it was the casualty. The caller must have drained the
  /// lane's in-flight packets first — the §3.4 in-flight guard still
  /// applies, and an index with packets in flight throws Error (moving it
  /// would strand live steering tags). Returns the number of indices
  /// re-homed. Dead lanes are skipped by every subsequent placement
  /// decision (pipeline_of results, rebalancing targets).
  std::size_t fail_pipeline(PipelineId pipeline);

  /// Bring a recovered lane back into the placement pool. It rejoins
  /// empty; periodic rebalancing migrates state back onto it.
  void recover_pipeline(PipelineId pipeline);

  bool alive(PipelineId pipeline) const { return alive_[pipeline]; }
  std::uint32_t alive_count() const;

  /// Address-resolution bookkeeping (§3.4).
  void note_resolved(RegId reg, RegIndex index); // access ctr +1, in-flight +1
  void note_completed(RegId reg, RegIndex index); // in-flight -1

  /// Run the periodic rebalance for every shardable register array.
  /// Returns the number of indexes moved.
  std::size_t rebalance();

  /// Aggregate per-pipeline access-counter load for one register array
  /// under the current mapping (exposed for tests and benches).
  std::vector<std::uint64_t> pipeline_load(RegId reg) const;

  std::uint64_t total_moves() const { return total_moves_; }
  const std::vector<std::vector<Value>>& storage() const { return values_; }

  /// Attach the telemetry registry (see src/telemetry/): registers the
  /// "shard.*" counters for rebalance churn and fault re-homing. Not
  /// called on telemetry-disabled runs; the hooks stay null and free.
  void set_telemetry(telemetry::Telemetry& sink);

private:
  struct PerReg {
    std::vector<PipelineId> map;          // index -> active pipeline
    std::vector<std::uint32_t> access;    // reset each rebalance
    std::vector<std::uint32_t> in_flight;
  };

  std::size_t rebalance_one(RegId reg);      // Figure 6 heuristic
  std::size_t rebalance_lpt(RegId reg);      // ideal LPT re-shard

  std::uint32_t k_;
  ShardingPolicy policy_;
  PipelineId pin_ = 0;
  std::vector<bool> alive_;
  std::vector<bool> shardable_;
  std::vector<std::vector<Value>> values_;
  std::vector<PerReg> regs_;
  std::uint64_t total_moves_ = 0;

  // -- telemetry hooks (registry-owned; null when telemetry is off) --
  telemetry::Counter* t_rebalance_runs_ = nullptr;
  telemetry::Counter* t_rebalance_moves_ = nullptr;
  telemetry::Counter* t_fault_rehomed_ = nullptr;
  telemetry::Counter* t_accesses_ = nullptr;
};

} // namespace mp5
