// Dynamically sharded shared register state (design principle D2, §3.4).
//
// The compiler allocates a full copy of every register array in the same
// stage of each pipeline, but at runtime each index is "active" in exactly
// one pipeline; the index-to-pipeline map tracks where. MP5 maintains a
// per-index packet-access counter (incremented at address resolution) and
// an in-flight counter (incremented at resolution, decremented once the
// packet has performed the access), and periodically rebalances with the
// Figure 6 heuristic. An index is only moved when its in-flight counter is
// zero, so steering tags in flight never go stale.
//
// Because accesses are only ever performed at an index's active pipeline,
// the simulator stores a single flat value per index; the per-pipeline
// replicas of the paper differ only physically, not observably.
//
// Accounting is *incremental* (see DESIGN.md "Incremental D2 accounting"):
// every periodic operation costs time proportional to the indices touched
// in the current remap window, never to the table size:
//   * windowed access counters are epoch-stamped — "resetting" them is one
//     epoch bump per register instead of a std::fill over the array;
//   * per-lane aggregate load and membership are maintained at access /
//     move time, so pipeline_load() and the fail_pipeline() load seed are
//     O(k) instead of O(indices);
//   * a per-window touched-index list feeds the Figure 6 candidate search
//     and the LPT baseline, preserving the naive scan's tie-breaks bit for
//     bit (ascending index, strict-greater best);
//   * fail_pipeline() walks the dead lane's membership list instead of the
//     whole map.
// The pre-optimization full-scan implementation is kept compiled in as
// rebalance_reference(); a property suite asserts the two produce
// identical shard maps and move counts for every seed/policy/fault plan.
#pragma once

#include <cstdint>
#include <vector>

#include "banzai/ir.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace mp5 {

class ByteReader;
class ByteWriter;

namespace telemetry {
class Counter;
class Scope;
}

enum class ShardingPolicy {
  /// Figure 6 heuristic every remap period (the MP5 default).
  kDynamic,
  /// Random compile-time sharding, never updated (the no-D2 baseline of
  /// §4.3.2).
  kStaticRandom,
  /// Everything in pipeline 0 (the naive shared-memory design of D1).
  kSinglePipeline,
  /// Near-optimal rebalancing: full greedy LPT re-shard each period
  /// (the "optimal bin packing" side of the ideal baseline, §4.3.3).
  kIdealLpt,
};

class ShardedState final : public ir::RegFile {
public:
  ShardedState(const std::vector<ir::RegisterSpec>& specs,
               const std::vector<bool>& shardable, std::uint32_t pipelines,
               ShardingPolicy policy, Rng rng);

  // -- RegFile (flat storage; see header comment) --
  Value read(RegId reg, RegIndex index) override;
  void write(RegId reg, RegIndex index, Value v) override;

  /// Active pipeline of (reg, index). Pinned arrays always map to the pin
  /// pipeline regardless of index (callers may pass kUnresolvedIndex).
  PipelineId pipeline_of(RegId reg, RegIndex index) const;

  bool shardable(RegId reg) const { return shardable_[reg]; }
  PipelineId pin_pipeline() const { return pin_; }

  // -- lane liveness (fault injection / graceful degradation) --

  /// Quarantine a failed lane: every index active there is atomically
  /// re-homed to the least-loaded surviving lane, and the pin pipeline
  /// moves if it was the casualty. The caller must have drained the
  /// lane's in-flight packets first — the §3.4 in-flight guard still
  /// applies, and an index with packets in flight throws Error (moving it
  /// would strand live steering tags). Returns the number of indices
  /// re-homed. Dead lanes are skipped by every subsequent placement
  /// decision (pipeline_of results, rebalancing targets). Costs
  /// O(indices on the dead lane), not O(table size): the evacuation set
  /// comes from the per-lane membership list and the survivor load seed
  /// from the incremental per-lane aggregates.
  std::size_t fail_pipeline(PipelineId pipeline);

  /// Bring a recovered lane back into the placement pool. It rejoins
  /// empty; periodic rebalancing migrates state back onto it.
  void recover_pipeline(PipelineId pipeline);

  bool alive(PipelineId pipeline) const { return alive_[pipeline]; }
  std::uint32_t alive_count() const;

  /// Address-resolution bookkeeping (§3.4).
  void note_resolved(RegId reg, RegIndex index); // access ctr +1, in-flight +1
  void note_completed(RegId reg, RegIndex index); // in-flight -1

  /// Run the periodic rebalance for every shardable register array.
  /// Returns the number of indexes moved. O(touched indices + k·regs) per
  /// call — a window that touched nothing costs O(k·regs) regardless of
  /// table size.
  std::size_t rebalance();

  /// The pre-incremental full-scan rebalance: identical decisions (and
  /// therefore identical maps, move counts and downstream SimResults),
  /// O(table size) per call. Kept compiled in as the oracle for the
  /// equivalence property suite and the bench_ablation_remap before/after
  /// comparison; SimOptions::reference_rebalance routes the simulator
  /// through it.
  std::size_t rebalance_reference();

  /// Aggregate per-pipeline access-counter load for one register array
  /// under the current mapping (exposed for tests and benches). O(k):
  /// returns the incrementally maintained per-lane aggregates.
  std::vector<std::uint64_t> pipeline_load(RegId reg) const;

  /// True when some access since the last window reset touched a register
  /// whose counters the next rebalance would reset — i.e. the next remap
  /// boundary is observable. When false, a rebalance under any policy is
  /// a provable no-op (zero windowed loads => zero moves, nothing to
  /// reset) and the simulator's fast-forward may skip the boundary.
  bool window_dirty() const { return window_dirty_; }

  /// Number of distinct indices of `reg` accessed in the current window
  /// (the size of the touched list the next rebalance will scan).
  std::size_t window_touched(RegId reg) const {
    return regs_[reg].touched.size();
  }

  std::uint64_t total_moves() const { return total_moves_; }
  const std::vector<std::vector<Value>>& storage() const { return values_; }

  /// Attach the telemetry registry (see src/telemetry/): registers the
  /// "shard.*" counters for rebalance churn and fault re-homing. Not
  /// called on telemetry-disabled runs; the hooks stay null and free.
  void set_telemetry(const telemetry::Scope& sink);

  // -- checkpoint/restore --

  /// Serialize register values, the full index-to-pipeline map, windowed
  /// access/in-flight counters with their epoch stamps, membership lists
  /// and per-lane aggregates — everything the rebalance heuristic and
  /// steering decisions read.
  void save(ByteWriter& w) const;
  /// Restore into a same-shaped ShardedState (same specs / k / policy);
  /// the constructor's initial placement is overwritten. Throws Error on
  /// shape mismatch.
  void load(ByteReader& r);

private:
  struct PerReg {
    std::vector<PipelineId> map;          // index -> active pipeline
    // Windowed access counters, epoch-stamped: access[i] is valid only
    // when stamp[i] == epoch, otherwise the index's windowed count is 0.
    // A window reset is an epoch bump, not a fill.
    std::vector<std::uint32_t> access;
    std::vector<std::uint32_t> stamp;
    std::vector<std::uint32_t> in_flight;
    /// Distinct indices accessed this window, in first-touch order (the
    /// candidate scans re-establish the naive ascending-index tie-break
    /// with explicit comparators).
    std::vector<RegIndex> touched;
    /// Per-lane membership: members[p] lists the indices mapped to lane p
    /// (swap-remove order; pos[i] is index i's slot in its lane's list).
    std::vector<std::vector<RegIndex>> members;
    std::vector<std::uint32_t> pos;
    /// Per-lane windowed aggregate of access counters, maintained at
    /// note_resolved / move time: pipeline_load() in O(k).
    std::vector<std::uint64_t> lane_load;
    std::uint32_t epoch = 1; // stamps start at 0 == untouched
  };

  /// Windowed access count of an index (0 unless touched this window).
  static std::uint32_t eff_access(const PerReg& per, RegIndex i) {
    return per.stamp[i] == per.epoch ? per.access[i] : 0;
  }
  /// Re-home one index, keeping map / membership / pos coherent.
  void move_index(PerReg& per, RegIndex i, PipelineId to);
  /// Close the register's remap window: clear the touched list, zero the
  /// per-lane aggregates, and invalidate every stamp via an epoch bump.
  void end_window(PerReg& per);
  /// Telemetry + dirty-flag epilogue shared by both rebalance paths.
  void finish_rebalance(std::size_t moves, std::uint64_t touched);

  std::size_t rebalance_one(RegId reg);      // Figure 6, O(touched + members[hi] on cold fallback)
  std::size_t rebalance_lpt(RegId reg);      // ideal LPT re-shard, O(touched log touched)
  std::size_t rebalance_one_reference(RegId reg); // Figure 6, full scan
  std::size_t rebalance_lpt_reference(RegId reg); // LPT, full scan

  std::uint32_t k_;
  ShardingPolicy policy_;
  PipelineId pin_ = 0;
  std::vector<bool> alive_;
  std::vector<bool> shardable_;
  /// resets_[r]: the periodic rebalance resets this register's window
  /// (all registers under static policies, shardable ones under the
  /// moving policies) — the condition for a touch to dirty the window.
  std::vector<bool> resets_;
  std::vector<std::vector<Value>> values_;
  std::vector<PerReg> regs_;
  std::uint64_t total_moves_ = 0;
  bool window_dirty_ = false;
  std::vector<RegIndex> scratch_; // evacuation / movable-candidate reuse

  // -- telemetry hooks (registry-owned; null when telemetry is off) --
  telemetry::Counter* t_rebalance_runs_ = nullptr;
  telemetry::Counter* t_rebalance_moves_ = nullptr;
  telemetry::Counter* t_fault_rehomed_ = nullptr;
  telemetry::Counter* t_accesses_ = nullptr;
  telemetry::Counter* t_touched_ = nullptr;
};

} // namespace mp5
