#include "mp5/stage_fifo.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "telemetry/telemetry.hpp"

namespace mp5 {
namespace {

/// Locate an entry by seq in a seq-sorted deque.
FifoEntry* find_by_seq(std::deque<FifoEntry>& queue, SeqNo seq) {
  auto it = std::lower_bound(
      queue.begin(), queue.end(), seq,
      [](const FifoEntry& e, SeqNo s) { return e.seq < s; });
  if (it == queue.end() || it->seq != seq) return nullptr;
  return &*it;
}

} // namespace

StageFifo::StageFifo(std::uint32_t lanes, std::size_t capacity, bool ideal)
    : ideal_(ideal) {
  if (lanes == 0) throw ConfigError("StageFifo: lanes must be > 0");
  if (!ideal_) {
    lanes_.reserve(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i) lanes_.emplace_back(capacity);
  }
}

void StageFifo::set_telemetry(const telemetry::Scope& sink) {
  t_push_ = &sink.counter("fifo.push");
  t_push_dropped_ = &sink.counter("fifo.push_dropped");
  t_insert_ = &sink.counter("fifo.insert");
  t_cancel_ = &sink.counter("fifo.cancel");
  t_pop_data_ = &sink.counter("fifo.pop_data");
  t_pop_wasted_ = &sink.counter("fifo.pop_wasted");
  t_pop_blocked_ = &sink.counter("fifo.pop_blocked");
  t_depth_ = &sink.histogram("fifo.depth_on_push", /*bucket_width=*/1.0,
                             /*buckets=*/64);
}

bool StageFifo::push_phantom(SeqNo seq, RegId reg, RegIndex index,
                             PipelineId lane, Cycle now) {
  FifoEntry entry;
  entry.kind = FifoEntry::Kind::kPhantom;
  entry.seq = seq;
  entry.enqueued = now;
  entry.reg = reg;
  entry.index = index;
  if (ideal_) {
    const IndexKey key = make_key(reg, index);
    if (pressure_ != 0) {
      auto it = queues_.find(key);
      if (it != queues_.end() && it->second.size() >= pressure_) {
        MP5_TELEM_INC(t_push_dropped_);
        return false; // forced-pressure fault: treat the queue as full
      }
    }
    queues_[key].push_back(std::move(entry));
    seq_key_[seq] = key;
    directory_[seq] = Address{lane, 0};
  } else {
    if (pressure_ != 0 && lanes_[lane].size() >= pressure_) {
      MP5_TELEM_INC(t_push_dropped_);
      return false; // forced-pressure fault: treat the lane as full
    }
    auto vidx = lanes_[lane].push(std::move(entry));
    if (!vidx) {
      MP5_TELEM_INC(t_push_dropped_);
      return false; // dropped: lane full
    }
    directory_[seq] = Address{lane, *vidx};
  }
  ++live_entries_;
  high_water_ = std::max(high_water_, live_entries_);
  MP5_TELEM_INC(t_push_);
  MP5_TELEM_OBSERVE(t_depth_, static_cast<double>(live_entries_));
  return true;
}

bool StageFifo::insert_data(SeqNo seq, PacketRef ref) {
  auto it = directory_.find(seq);
  if (it == directory_.end()) return false;
  if (ideal_) {
    const IndexKey key = seq_key_.at(seq);
    auto& queue = queues_.at(key);
    FifoEntry* entry = find_by_seq(queue, seq);
    if (entry == nullptr || entry->kind != FifoEntry::Kind::kPhantom) {
      throw Error("StageFifo::insert_data: entry is not a phantom");
    }
    entry->kind = FifoEntry::Kind::kData;
    entry->ref = ref;
    if (&queue.front() == entry) eligible_[seq] = key;
  } else {
    auto& entry = lanes_[it->second.lane].at(it->second.vidx);
    if (entry.kind != FifoEntry::Kind::kPhantom) {
      throw Error("StageFifo::insert_data: entry is not a phantom");
    }
    entry.kind = FifoEntry::Kind::kData;
    entry.ref = ref;
  }
  directory_.erase(it);
  MP5_TELEM_INC(t_insert_);
  return true;
}

void StageFifo::cancel(SeqNo seq) {
  auto it = directory_.find(seq);
  if (it == directory_.end()) return; // phantom was dropped
  MP5_TELEM_INC(t_cancel_);
  if (ideal_) {
    const IndexKey key = seq_key_.at(seq);
    auto& queue = queues_.at(key);
    FifoEntry* entry = find_by_seq(queue, seq);
    if (entry == nullptr || entry->kind != FifoEntry::Kind::kPhantom) {
      throw Error("StageFifo::cancel: entry is not a phantom");
    }
    entry->kind = FifoEntry::Kind::kCancelled;
    directory_.erase(it);
    ideal_settle_front(key); // free reclamation in the ideal design
  } else {
    auto& entry = lanes_[it->second.lane].at(it->second.vidx);
    if (entry.kind != FifoEntry::Kind::kPhantom) {
      throw Error("StageFifo::cancel: entry is not a phantom");
    }
    entry.kind = FifoEntry::Kind::kCancelled;
    directory_.erase(it);
  }
}

void StageFifo::ideal_settle_front(IndexKey key) {
  auto qit = queues_.find(key);
  if (qit == queues_.end()) return;
  auto& queue = qit->second;
  while (!queue.empty() &&
         queue.front().kind == FifoEntry::Kind::kCancelled) {
    seq_key_.erase(queue.front().seq);
    queue.pop_front();
    --live_entries_;
  }
  if (queue.empty()) {
    queues_.erase(qit);
    return;
  }
  if (queue.front().kind == FifoEntry::Kind::kData) {
    eligible_[queue.front().seq] = key;
  }
}

std::optional<Cycle> StageFifo::oldest_head_enqueue() const {
  std::optional<Cycle> oldest;
  if (ideal_) {
    for (const auto& [key, queue] : queues_) {
      if (queue.empty()) continue;
      if (!oldest || queue.front().enqueued < *oldest) {
        oldest = queue.front().enqueued;
      }
    }
    return oldest;
  }
  for (const auto& lane : lanes_) {
    if (lane.empty()) continue;
    if (!oldest || lane.front().enqueued < *oldest) {
      oldest = lane.front().enqueued;
    }
  }
  return oldest;
}

StageFifo::PopResult StageFifo::pop() {
  PopResult result = ideal_ ? pop_ideal() : pop_lanes();
  switch (result.kind) {
    case PopResult::Kind::kData: MP5_TELEM_INC(t_pop_data_); break;
    case PopResult::Kind::kWasted: MP5_TELEM_INC(t_pop_wasted_); break;
    case PopResult::Kind::kBlocked: MP5_TELEM_INC(t_pop_blocked_); break;
    case PopResult::Kind::kIdle: break;
  }
  return result;
}

std::vector<PacketRef> StageFifo::drain_all() {
  std::vector<PacketRef> data;
  if (ideal_) {
    for (auto& [key, queue] : queues_) {
      for (auto& entry : queue) {
        if (entry.kind == FifoEntry::Kind::kData) {
          data.push_back(entry.ref);
        }
      }
    }
    queues_.clear();
    eligible_.clear();
    seq_key_.clear();
  } else {
    for (auto& lane : lanes_) {
      while (!lane.empty()) {
        if (lane.front().kind == FifoEntry::Kind::kData) {
          data.push_back(lane.front().ref);
        }
        lane.pop_front();
      }
    }
  }
  directory_.clear();
  live_entries_ = 0;
  return data;
}

std::vector<PacketRef> StageFifo::extract_data_if(
    const std::function<bool(PacketRef)>& pred) {
  std::vector<PacketRef> out;
  if (ideal_) {
    for (auto& [key, queue] : queues_) {
      for (auto& entry : queue) {
        if (entry.kind == FifoEntry::Kind::kData && pred(entry.ref)) {
          out.push_back(entry.ref);
          entry.ref = kNullPacketRef;
          entry.kind = FifoEntry::Kind::kCancelled;
          eligible_.erase(entry.seq);
        }
      }
    }
    if (!out.empty()) {
      // Reclaim any queue whose front just became cancelled (settling can
      // erase map entries, so iterate over a key snapshot).
      std::vector<IndexKey> keys;
      keys.reserve(queues_.size());
      for (const auto& [key, queue] : queues_) keys.push_back(key);
      for (const IndexKey key : keys) ideal_settle_front(key);
    }
  } else {
    for (auto& lane : lanes_) {
      if (lane.empty()) continue;
      for (std::uint64_t v = lane.front_vidx(); lane.contains(v); ++v) {
        auto& entry = lane.at(v);
        if (entry.kind == FifoEntry::Kind::kData && pred(entry.ref)) {
          out.push_back(entry.ref);
          entry.ref = kNullPacketRef;
          entry.kind = FifoEntry::Kind::kCancelled;
        }
      }
    }
  }
  return out;
}

void StageFifo::for_each_entry(
    const std::function<void(const FifoEntry&)>& fn) const {
  if (ideal_) {
    for (const auto& [key, queue] : queues_) {
      for (const auto& entry : queue) fn(entry);
    }
    return;
  }
  for (const auto& lane : lanes_) {
    if (lane.empty()) continue;
    for (std::uint64_t v = lane.front_vidx(); lane.contains(v); ++v) {
      fn(lane.at(v));
    }
  }
}

void StageFifo::check_invariants(Cycle now, bool check_order) const {
  std::size_t counted = 0;
  std::size_t phantoms = 0;
  if (ideal_) {
    for (const auto& [key, queue] : queues_) {
      SeqNo prev = 0;
      bool first = true;
      for (const auto& entry : queue) {
        ++counted;
        if (entry.kind == FifoEntry::Kind::kPhantom) ++phantoms;
        if (entry.kind == FifoEntry::Kind::kEmpty) {
          throw InvariantError("fifo-entry", now, "empty entry queued");
        }
        auto it = seq_key_.find(entry.seq);
        if (it == seq_key_.end() || it->second != key) {
          throw InvariantError("phantom-directory", now,
                               "seq->index map out of sync for seq " +
                                   std::to_string(entry.seq));
        }
        if (check_order && !first && entry.seq <= prev) {
          throw InvariantError("invariant-1", now,
                               "per-index queue not in arrival order");
        }
        prev = entry.seq;
        first = false;
      }
    }
    for (const auto& [seq, key] : eligible_) {
      auto it = queues_.find(key);
      if (it == queues_.end() || it->second.empty() ||
          it->second.front().seq != seq ||
          it->second.front().kind != FifoEntry::Kind::kData) {
        throw InvariantError("eligible-set", now,
                             "eligible entry is not a data head");
      }
    }
  } else {
    for (const auto& lane : lanes_) {
      if (lane.empty()) continue;
      SeqNo prev = 0;
      bool first = true;
      for (std::uint64_t v = lane.front_vidx(); lane.contains(v); ++v) {
        const FifoEntry& entry = lane.at(v);
        ++counted;
        if (entry.kind == FifoEntry::Kind::kPhantom) ++phantoms;
        if (entry.kind == FifoEntry::Kind::kEmpty) {
          throw InvariantError("fifo-entry", now, "empty entry queued");
        }
        if (check_order && !first && entry.seq <= prev) {
          throw InvariantError(
              "invariant-1", now,
              "lane not in arrival order: seq " + std::to_string(entry.seq) +
                  " behind " + std::to_string(prev));
        }
        prev = entry.seq;
        first = false;
      }
    }
  }
  if (counted != live_entries_) {
    throw InvariantError("fifo-occupancy", now,
                         "live_entries=" + std::to_string(live_entries_) +
                             " but " + std::to_string(counted) +
                             " entries queued");
  }
  if (phantoms != directory_.size()) {
    throw InvariantError("phantom-directory", now,
                         std::to_string(phantoms) + " queued phantoms vs " +
                             std::to_string(directory_.size()) +
                             " directory entries");
  }
  for (const auto& [seq, addr] : directory_) {
    const FifoEntry* entry = nullptr;
    if (ideal_) {
      auto kit = seq_key_.find(seq);
      if (kit != seq_key_.end()) {
        auto qit = queues_.find(kit->second);
        if (qit != queues_.end()) {
          entry = find_by_seq(const_cast<std::deque<FifoEntry>&>(qit->second),
                              seq);
        }
      }
    } else {
      if (addr.lane < lanes_.size() && lanes_[addr.lane].contains(addr.vidx)) {
        entry = &lanes_[addr.lane].at(addr.vidx);
      }
    }
    if (entry == nullptr || entry->seq != seq ||
        entry->kind != FifoEntry::Kind::kPhantom) {
      throw InvariantError("phantom-directory", now,
                           "directory entry for seq " + std::to_string(seq) +
                               " does not address a queued phantom");
    }
  }
}

namespace {

void save_entry(ByteWriter& w, const FifoEntry& entry) {
  w.u8(static_cast<std::uint8_t>(entry.kind));
  w.u64(entry.seq);
  w.u64(entry.enqueued);
  w.u32(entry.reg);
  w.u32(entry.index);
  w.u32(entry.ref);
}

FifoEntry load_entry(ByteReader& r) {
  FifoEntry entry;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(FifoEntry::Kind::kCancelled)) {
    throw Error("checkpoint: invalid FifoEntry kind");
  }
  entry.kind = static_cast<FifoEntry::Kind>(kind);
  entry.seq = r.u64();
  entry.enqueued = r.u64();
  entry.reg = r.u32();
  entry.index = r.u32();
  entry.ref = r.u32();
  return entry;
}

} // namespace

void StageFifo::save(ByteWriter& w) const {
  w.boolean(ideal_);
  if (ideal_) {
    // queues_ and eligible_ are std::maps: iteration order is already
    // deterministic. seq_key_ is derivable from queues_ and not written.
    w.u64(queues_.size());
    for (const auto& [key, queue] : queues_) {
      w.u64(key);
      w.u64(queue.size());
      for (const FifoEntry& entry : queue) save_entry(w, entry);
    }
    w.u64(eligible_.size());
    for (const auto& [seq, key] : eligible_) {
      w.u64(seq);
      w.u64(key);
    }
  } else {
    w.u64(lanes_.size());
    for (const auto& lane : lanes_) {
      w.u64(lane.base_vidx());
      w.u64(lane.size());
      w.u64(lane.high_water_mark());
      if (!lane.empty()) {
        for (std::uint64_t v = lane.front_vidx(); lane.contains(v); ++v) {
          save_entry(w, lane.at(v));
        }
      }
    }
  }
  // directory_ is an unordered_map used for keyed lookup only: write it
  // sorted by seq for a byte-stable payload.
  std::vector<std::pair<SeqNo, Address>> dir(directory_.begin(),
                                             directory_.end());
  std::sort(dir.begin(), dir.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(dir.size());
  for (const auto& [seq, addr] : dir) {
    w.u64(seq);
    w.u32(addr.lane);
    w.u64(addr.vidx);
  }
  w.u64(live_entries_);
  w.u64(high_water_);
}

void StageFifo::load(ByteReader& r) {
  if (r.boolean() != ideal_) {
    throw Error("checkpoint: StageFifo ideal-mode mismatch");
  }
  if (live_entries_ != 0) {
    throw Error("checkpoint: StageFifo::load target is not empty");
  }
  if (ideal_) {
    queues_.clear();
    eligible_.clear();
    seq_key_.clear();
    const std::uint64_t nqueues = r.count(8);
    for (std::uint64_t q = 0; q < nqueues; ++q) {
      const IndexKey key = r.u64();
      auto& queue = queues_[key];
      const std::uint64_t nentries = r.count(8);
      for (std::uint64_t i = 0; i < nentries; ++i) {
        queue.push_back(load_entry(r));
        seq_key_[queue.back().seq] = key;
      }
      if (queue.empty()) {
        throw Error("checkpoint: empty ideal queue serialized");
      }
    }
    const std::uint64_t neligible = r.count(16);
    for (std::uint64_t i = 0; i < neligible; ++i) {
      const SeqNo seq = r.u64();
      eligible_[seq] = r.u64();
    }
  } else {
    const std::uint64_t nlanes = r.count(8);
    if (nlanes != lanes_.size()) {
      throw Error("checkpoint: StageFifo lane count mismatch");
    }
    for (auto& lane : lanes_) {
      const std::uint64_t base = r.u64();
      const std::uint64_t size = r.u64();
      const std::uint64_t lane_hw = r.u64();
      if (size > lane_hw) {
        throw Error("checkpoint: StageFifo lane size exceeds high water");
      }
      // restore_base re-establishes the virtual-index origin, so each
      // push below reproduces the checkpointed run's vidx values exactly
      // (the directory below addresses entries by them).
      lane.restore_base(base, static_cast<std::size_t>(lane_hw));
      for (std::uint64_t i = 0; i < size; ++i) {
        if (!lane.push(load_entry(r))) {
          throw Error("checkpoint: StageFifo lane overflow on restore");
        }
      }
    }
  }
  directory_.clear();
  const std::uint64_t ndir = r.count(20);
  for (std::uint64_t i = 0; i < ndir; ++i) {
    const SeqNo seq = r.u64();
    Address addr{};
    addr.lane = r.u32();
    addr.vidx = r.u64();
    if (!ideal_) {
      if (addr.lane >= lanes_.size() ||
          !lanes_[addr.lane].contains(addr.vidx)) {
        throw Error("checkpoint: FIFO directory addresses a stale entry");
      }
    }
    directory_[seq] = addr;
  }
  live_entries_ = static_cast<std::size_t>(r.u64());
  high_water_ = static_cast<std::size_t>(r.u64());
}

StageFifo::PopResult StageFifo::pop_lanes() {
  PopResult result;
  RingFifo<FifoEntry>* best = nullptr;
  SeqNo best_seq = kInvalidSeqNo;
  for (auto& lane : lanes_) {
    if (lane.empty()) continue;
    const SeqNo seq = lane.front().seq;
    if (best == nullptr || seq < best_seq) {
      best = &lane;
      best_seq = seq;
    }
  }
  if (best == nullptr) return result; // kIdle
  FifoEntry& head = best->front();
  switch (head.kind) {
    case FifoEntry::Kind::kPhantom:
      result.kind = PopResult::Kind::kBlocked;
      return result;
    case FifoEntry::Kind::kCancelled:
      best->pop_front();
      --live_entries_;
      result.kind = PopResult::Kind::kWasted;
      return result;
    case FifoEntry::Kind::kData:
      result.kind = PopResult::Kind::kData;
      result.ref = head.ref;
      best->pop_front();
      --live_entries_;
      return result;
    case FifoEntry::Kind::kEmpty:
      break;
  }
  throw Error("StageFifo::pop: empty entry at head");
}

StageFifo::PopResult StageFifo::pop_ideal() {
  PopResult result;
  if (eligible_.empty()) {
    result.kind = live_entries_ == 0 ? PopResult::Kind::kIdle
                                     : PopResult::Kind::kBlocked;
    return result;
  }
  const auto [seq, key] = *eligible_.begin();
  eligible_.erase(eligible_.begin());
  auto& queue = queues_.at(key);
  if (queue.front().seq != seq ||
      queue.front().kind != FifoEntry::Kind::kData) {
    throw Error("StageFifo::pop_ideal: eligible set out of sync");
  }
  result.kind = PopResult::Kind::kData;
  result.ref = queue.front().ref;
  seq_key_.erase(seq);
  queue.pop_front();
  --live_entries_;
  ideal_settle_front(key);
  return result;
}

} // namespace mp5
