// Fundamental throughput bounds (§3.5.2): "maximum packet processing rate
// is a function of the packet processing program being implemented".
//
// Given a program and a trace, this analyzer computes how fast ANY
// k-pipeline design respecting Banzai's one-access-per-state-per-cycle
// rule could process it:
//   * per-state serial bound — a single (reg, index) serves one packet per
//     cycle, so throughput <= 1 / (k * f_max) of line rate, where f_max is
//     the largest fraction of packets accessing one state (a global
//     counter has f_max = 1: the 1/k limit of the paper's example);
//   * per-stage aggregate bound — a stage's k pipeline copies serve k
//     accesses per cycle, so throughput <= 1 / f_stage, where f_stage is
//     the average number of accesses per packet at that stage (1 when
//     every packet is stateful there).
// The reported bound is the minimum. Measured MP5 throughput can approach
// but never exceed it; the gap is MP5's practical overhead (§3.5.2's HOL
// blocking and heuristic sharding).
#pragma once

#include <cstdint>
#include <vector>

#include "mp5/transform.hpp"
#include "trace/trace.hpp"

namespace mp5 {

struct AdmissibilityReport {
  /// Largest per-(reg, index) access fraction and where it occurs.
  double hottest_state_fraction = 0.0;
  RegId hottest_reg = 0;
  RegIndex hottest_index = 0;
  /// Largest per-stage accesses-per-packet.
  double hottest_stage_load = 0.0;
  StageId hottest_stage = 0;
  /// Upper bound on normalized throughput for k pipelines.
  double bound = 1.0;
};

/// Analyze a trace against a compiled MP5 program for a k-pipeline switch.
/// Uses the same address-resolution logic as the simulator (resolvable
/// guards respected; conservative accesses counted as taken; unresolvable
/// indexes pool into one per-array serial state, reflecting the pinned
/// fallback).
AdmissibilityReport analyze_admissibility(const Mp5Program& program,
                                          const Trace& trace,
                                          std::uint32_t pipelines);

} // namespace mp5
