// Schema-versioned checkpoint framing (`mp5-checkpoint v1`, ISSUE 6).
//
// A checkpoint is one self-describing binary blob:
//
//   offset  size  field
//   0       18    magic "mp5-checkpoint v1\n"
//   18      4     u32 header version (1)
//   22      8     u64 config fingerprint (FNV-1a over the semantic
//                 simulator configuration + fault plan + program shape)
//   30      8     u64 cycle the checkpoint was taken at
//   38      8     u64 payload length
//   46      N     payload (Mp5Simulator::serialize_state)
//   46+N    8     u64 FNV-1a checksum over bytes [0, 46+N)
//
// All integers little-endian. The fingerprint covers only *semantic*
// configuration — fields that change what the simulation computes
// (pipelines, sharding, seed, faults, program shape, ...). Engine knobs
// that are proven bit-identity-preserving (threads, fast_forward,
// reference_rebalance, checkpoint cadence itself) are excluded, so a
// checkpoint taken single-threaded restores fine into a 4-thread run.
//
// Corruption handling: truncated files, bad magic, version or fingerprint
// mismatches and checksum failures all throw Error with a diagnostic —
// never undefined behavior (the payload reader is bounds-checked too).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace mp5 {

struct Mp5Program;
struct SimOptions;

inline constexpr std::string_view kCheckpointMagic = "mp5-checkpoint v1\n";
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct CheckpointInfo {
  std::uint64_t fingerprint = 0;
  Cycle cycle = 0;
  /// View into the blob passed to parse_checkpoint (same lifetime).
  std::string_view payload;
};

/// Wrap a serialized payload in the framing above.
std::string frame_checkpoint(std::uint64_t fingerprint, Cycle cycle,
                             std::string payload);

/// Validate framing and checksum; throws Error on any corruption.
CheckpointInfo parse_checkpoint(std::string_view blob);

/// Total byte size of the frame starting at `blob[0]`, read from its
/// header. Used to split files that concatenate frames (the soak driver
/// stores the simulator frame followed by the verifier frame); the split
/// is safe because each frame's checksum is still verified by
/// parse_checkpoint afterwards. Throws Error if the header is incomplete
/// or the implied size exceeds the blob.
std::size_t framed_size(std::string_view blob);

/// Atomic checkpoint write: the blob lands under a temporary name and is
/// renamed into place, so a crash mid-write never leaves a torn file at
/// `path` (the previous checkpoint survives).
void write_checkpoint_file(const std::string& path, const std::string& blob);

std::string read_checkpoint_file(const std::string& path);

/// FNV-1a fingerprint of everything that must match between the
/// checkpointing and the restoring simulator for bit-identity.
std::uint64_t config_fingerprint(const Mp5Program& program,
                                 const SimOptions& options);

} // namespace mp5
