// PVSM-to-PVSM transformer (§3.3, Figure 5 right): compiles preemptive
// address resolution (design principle D4) into the pipeline.
//
// For every stateful atom the transformer extracts the backward slice of
// its register-index expression and of its access guard:
//   * if the slice is stateless, the computation is hoisted into the
//     address-resolution (AR) logic executed at packet arrival — the
//     "new stage at the beginning of the pipeline" of §3.3. Because the
//     lowered TAC is SSA and pure instructions are idempotent, the hoisted
//     instructions also remain in their original stages; executing them
//     early is semantics-preserving.
//   * if the guard slice is stateful, the access is marked *conservative*:
//     a phantom packet will be generated anyway and cancelled in flight
//     once the guard value is known (one wasted pop cycle, §3.3);
//   * if the index slice is stateful, the register array cannot be
//     sharded: it is pinned to one pipeline (no D2 for that array, §3.3).
//
// Arrays that share a stage with a non-mutually-exclusive stateful atom
// (possible only when the compiler fell back to the unserialized schedule)
// are likewise pinned, all to the same pipeline.
//
// The transformer can optionally append the "dummy stateful stage" of
// §3.4 (Handling starvation and packet re-ordering): a final stage whose
// ordering register is indexed by the packet's flow hash, which forces
// per-flow in-order departure.
#pragma once

#include <string>
#include <vector>

#include "banzai/ir.hpp"
#include "common/types.hpp"

namespace mp5 {

struct AccessDescriptor {
  RegId reg = 0;
  /// Stage in the transformed numbering: AR stage is 0, original stage s
  /// becomes s + 1.
  StageId stage = 0;
  ir::Operand index;
  bool index_resolvable = true;
  /// Unified access guard of the atom (kNoSlot = state always accessed).
  ir::Slot guard = ir::kNoSlot;
  bool guard_negate = false;
  bool guard_resolvable = true;
  /// Transformed stage after whose processing the guard value is known
  /// (only meaningful for unresolvable guards).
  StageId guard_known_after_stage = 0;
};

struct TransformOptions {
  /// Append the §3.4 per-flow ordering stage. `flow_fields` lists the
  /// declared packet fields hashed into the flow id.
  bool add_flow_order_stage = false;
  std::vector<std::string> flow_fields;
  std::size_t flow_order_reg_size = 1024;
};

struct Mp5Program {
  /// The program stages (original PVSM; plus the appended flow-order stage
  /// when requested). Stage s here executes at transformed stage s + 1.
  ir::Pvsm pvsm;
  /// Pure instructions executed on the packet headers at arrival; computes
  /// every preemptively resolvable index and guard value.
  std::vector<ir::TacInstr> resolver;
  /// Stateful accesses, sorted by transformed stage.
  std::vector<AccessDescriptor> accesses;
  /// Whether each register array may be sharded across pipelines (D2).
  std::vector<bool> shardable;
  /// Total transformed stages = pvsm.stages.size() + 1 (AR stage).
  StageId num_stages = 0;
  bool has_flow_order = false;
  RegId flow_order_reg = ir::kNoReg;

  /// Count of accesses whose guard could not be resolved preemptively
  /// (reported by benches: these are the paper's "wasted cycle" cases).
  std::size_t conservative_accesses() const;
  /// Count of pinned (non-shardable) register arrays.
  std::size_t pinned_registers() const;
};

Mp5Program transform(const ir::Pvsm& pvsm, const TransformOptions& options = {});

} // namespace mp5
