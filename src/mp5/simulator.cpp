#include "mp5/simulator.hpp"

#include <algorithm>
#include <bit>
#include <exception>

#include "common/error.hpp"

namespace mp5 {
namespace {

/// Access observer that feeds the C1 checker, collapsing one packet's
/// read-modify-write of a state into a single logical access. Parallel
/// workers pass their C1Scratch so the shared violator set is only touched
/// at the barrier merge.
struct C1Observer final : ir::AccessObserver {
  void on_state_access(RegId reg, RegIndex index, bool /*is_write*/) override {
    if (seen && reg == last_reg && index == last_index) return;
    checker->on_access(reg, index, seq, scratch);
    last_reg = reg;
    last_index = index;
    seen = true;
  }
  C1Checker* checker = nullptr;
  C1Scratch* scratch = nullptr;
  SeqNo seq = 0;
  RegId last_reg = ir::kNoReg;
  RegIndex last_index = 0;
  bool seen = false;
};

bool entry_live(const PlannedAccess& e) { return !e.done && !e.cancelled; }

/// Parallel event engine: minimum number of active cells before a cycle is
/// worth dispatching to the worker pool. Below this, a barrier round-trip
/// (condvar wakeup + merge, microseconds) dwarfs the per-cell visit cost
/// (~100ns), so the busy blocks run inline on the main thread instead —
/// with identical staging and merge order. Full-rate traffic at k >= 8
/// clears the bar comfortably; sparse trickles never do.
constexpr std::uint32_t kDispatchMinActiveCells = 64;

} // namespace

Mp5Simulator::Mp5Simulator(const Mp5Program& program, const SimOptions& options)
    : prog_(&program), opts_(options) {
  // Option validation: every inconsistent combination is rejected here, at
  // construction, instead of being silently patched or misbehaving at run
  // time.
  if (opts_.pipelines == 0) {
    throw ConfigError("SimOptions: pipelines must be > 0");
  }
  if (opts_.variant != DesignVariant::kMp5) {
    throw ConfigError(std::string("SimOptions: variant '") +
                      to_string(opts_.variant) +
                      "' is a replicated-state design; construct "
                      "ScrSimulator/RelaxedSimulator "
                      "(src/baseline/replicated.hpp), not Mp5Simulator");
  }
  if (opts_.staleness_bound != 0) {
    throw ConfigError(
        "SimOptions: staleness_bound applies to variant 'relaxed' only; "
        "variant 'mp5' shares state through D1-D4 and has no staleness");
  }
  if (opts_.naive_single_pipeline &&
      opts_.sharding != ShardingPolicy::kSinglePipeline) {
    throw ConfigError(
        "SimOptions: naive_single_pipeline requires "
        "ShardingPolicy::kSinglePipeline (use baseline::naive_options)");
  }
  if (opts_.ideal_queues && opts_.sharding != ShardingPolicy::kIdealLpt) {
    throw ConfigError(
        "SimOptions: ideal_queues models the §4.3.3 upper bound and "
        "requires ShardingPolicy::kIdealLpt");
  }
  if (opts_.fifo_capacity != 0 && !opts_.ideal_queues &&
      opts_.ecn_threshold >
          opts_.fifo_capacity * static_cast<std::size_t>(opts_.pipelines)) {
    // A stage FIFO holds k lanes of fifo_capacity entries each, so its
    // occupancy can never exceed k*capacity: a larger ECN threshold can
    // never fire. (starvation_threshold is measured in cycles waited, not
    // entries, so it has no comparable capacity bound.)
    throw ConfigError(
        "SimOptions: ecn_threshold exceeds the maximum stage-FIFO "
        "occupancy (pipelines * fifo_capacity); it could never trigger");
  }
  if (opts_.threads == 0) {
    throw ConfigError("SimOptions: threads must be >= 1");
  }
  if (opts_.threads > 1 &&
      (opts_.telemetry != nullptr || opts_.timeline)) {
    throw ConfigError(
        "SimOptions: the parallel engine (threads > 1) cannot produce the "
        "telemetry/timeline event streams (their order is defined by the "
        "sequential walk); run with threads = 1 to record events");
  }
  if (opts_.checkpoint_interval != 0 && !opts_.checkpoint_sink) {
    throw ConfigError(
        "SimOptions: checkpoint_interval requires a checkpoint_sink to "
        "receive the blobs");
  }
  opts_.faults.validate(opts_.pipelines);
  if (opts_.faults.has_phantom_faults() && !opts_.realistic_phantom_channel) {
    throw ConfigError(
        "SimOptions: phantom loss/delay faults need "
        "realistic_phantom_channel (instant delivery has no channel to "
        "fail)");
  }
  if (!opts_.faults.pipeline_faults.empty() &&
      opts_.sharding == ShardingPolicy::kSinglePipeline) {
    throw ConfigError(
        "SimOptions: pipeline failures need a sharding policy that can "
        "re-home state to survivors (not kSinglePipeline)");
  }

  k_ = opts_.pipelines;
  num_stages_ = prog_->num_stages;

  Rng rng(opts_.seed);
  // state_ forks first so fault-free runs see the same random stream as
  // before fault support existed.
  state_ = std::make_unique<ShardedState>(prog_->pvsm.registers,
                                          prog_->shardable, k_, opts_.sharding,
                                          rng.fork());
  fault_rng_ = rng.fork();
  fault_sched_ = FaultSchedule(opts_.faults, k_);
  lane_alive_.assign(k_, true);
  lost_phantoms_.resize(k_);

  const std::size_t cells =
      static_cast<std::size_t>(k_) * static_cast<std::size_t>(num_stages_);
  fifos_.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    fifos_.emplace_back(k_, opts_.fifo_capacity, opts_.ideal_queues);
  }
  arrival_slots_.assign(cells * k_, ArrivedRef{});
  arrival_count_.assign(cells, 0);
  ingress_.resize(k_);

  if (opts_.check_c1) {
    // Dense last-seq table: one flat vector per register array, replacing
    // the per-access hash lookup (and letting parallel workers write their
    // own shard's cells without locks).
    std::vector<std::size_t> sizes;
    sizes.reserve(prog_->pvsm.registers.size());
    for (const auto& spec : prog_->pvsm.registers) {
      sizes.push_back(static_cast<std::size_t>(spec.size));
    }
    c1_.init_dense(sizes);
  }

  workers_ = std::min<std::uint32_t>(opts_.threads, k_);
  worker_ctx_.resize(workers_);
  worker_error_.resize(workers_);
  worker_phase_ = std::vector<std::atomic<std::uint64_t>>(workers_);
  busy_scratch_.assign(workers_, 0);
  lane_range_.reserve(workers_);
  for (std::uint32_t w = 0; w < workers_; ++w) {
    lane_range_.emplace_back(
        static_cast<PipelineId>(static_cast<std::uint64_t>(w) * k_ / workers_),
        static_cast<PipelineId>(static_cast<std::uint64_t>(w + 1) * k_ /
                                workers_));
  }

  event_engine_ = opts_.engine == SimEngine::kEvent;
  lane_words_ = (k_ + 63) / 64;
  if (event_engine_) {
    active_ = std::vector<std::atomic<std::uint64_t>>(
        static_cast<std::size_t>(num_stages_) * lane_words_);
    busy_words_.assign(lane_words_, 0);
    worker_masks_.resize(workers_);
    for (std::uint32_t w = 0; w < workers_; ++w) {
      const auto [lo, hi] = lane_range_[w];
      for (std::uint32_t widx = lo >> 6; widx <= (hi - 1) >> 6; ++widx) {
        const std::uint32_t base = widx << 6;
        std::uint64_t mask = ~std::uint64_t{0};
        if (lo > base) mask &= ~std::uint64_t{0} << (lo - base);
        if (hi - base < 64) mask &= (std::uint64_t{1} << (hi - base)) - 1;
        worker_masks_[w].emplace_back(widx, mask);
      }
    }
  }

#if MP5_TELEMETRY_COMPILED
  if (opts_.telemetry != nullptr) {
    telem_ = opts_.telemetry;
    // All metric names go through the scope so co-resident simulators with
    // distinct SimOptions::telemetry_prefix values keep distinct metrics.
    tscope_ = telemetry::Scope(*telem_, opts_.telemetry_prefix);
    state_->set_telemetry(tscope_);
    for (auto& fifo : fifos_) fifo.set_telemetry(tscope_);
    t_admit_ = &tscope_.counter("sim.admitted");
    t_egress_ = &tscope_.counter("sim.egressed");
    t_steer_ = &tscope_.counter("sim.steers");
    t_drop_data_ = &tscope_.counter("sim.dropped_data");
    t_drop_starved_ = &tscope_.counter("sim.dropped_starved");
    t_drop_fault_ = &tscope_.counter("sim.dropped_fault");
    t_ecn_ = &tscope_.counter("sim.ecn_marked");
    t_stall_cycles_ = &tscope_.counter("fault.stalled_cycles");
    t_phantom_sent_ = &tscope_.counter("phantom.sent");
    t_phantom_lost_ = &tscope_.counter("phantom.lost");
    t_phantom_delayed_ = &tscope_.counter("phantom.delayed");
    t_lane_fail_ = &tscope_.counter("fault.lane_failures");
    t_lane_recover_ = &tscope_.counter("fault.lane_recoveries");
    t_egress_latency_ = &tscope_.histogram("sim.egress_latency", 1.0, 128);
  }
#endif
}

Mp5Simulator::~Mp5Simulator() { stop_workers(); }

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

SimResult Mp5Simulator::run(const Trace& trace) {
  VectorTraceSource source(trace);
  return run(source);
}

SimResult Mp5Simulator::run(TraceSource& source) {
  result_ = SimResult{};

  // Pre-size the per-run pools: the arena grows to the peak number of
  // in-flight packets (bounded by the trace but usually far smaller), and
  // the egress log is one record per delivered packet — but a streaming
  // soak trace is effectively unbounded, so cap the reservations.
  const std::optional<std::uint64_t> total = source.size();
  arena_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(total.value_or(4096), 4096)));
  if (opts_.record_egress && !opts_.egress_sink && total.has_value()) {
    result_.egress.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(*total, std::uint64_t{1} << 20)));
  }

  next_checkpoint_ = opts_.checkpoint_interval; // 0 when disabled
  return run_loop(source, 0);
}

// ---------------------------------------------------------------------------
// Co-simulation stepping API (see header): the run_loop walk under an
// external clock. begin + step(0..n) + finish(n) == run(), bit for bit.
// ---------------------------------------------------------------------------

void Mp5Simulator::begin(TraceSource& source) {
  if (workers_ > 1) {
    throw ConfigError(
        "Mp5Simulator::begin: external clocking requires the sequential "
        "engine (threads == 1)");
  }
  if (opts_.checkpoint_interval != 0) {
    throw ConfigError(
        "Mp5Simulator::begin: checkpointing is owned by run(); an "
        "externally clocked run cannot honor checkpoint_interval");
  }
  if (source_ != nullptr) {
    throw Error("Mp5Simulator::begin: a run is already active");
  }
  result_ = SimResult{};
  const std::optional<std::uint64_t> total = source.size();
  arena_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(total.value_or(4096), 4096)));
  source_ = &source;
}

void Mp5Simulator::step(Cycle now) {
  if (source_ == nullptr) {
    throw Error("Mp5Simulator::step: no active run (call begin first)");
  }
  step_cycle(now, /*parallel=*/false);
}

bool Mp5Simulator::has_work() { return work_remaining(); }

SimResult Mp5Simulator::finish(Cycle end_cycle) {
  if (source_ == nullptr) {
    throw Error("Mp5Simulator::finish: no active run (call begin first)");
  }
  return finalize(end_cycle);
}

SimResult Mp5Simulator::run_loop(TraceSource& source, Cycle start_cycle) {
  source_ = &source;

  // Fast-forward is only sound when nothing is scheduled against the wall
  // clock: any fault plan (stall windows, pressure windows, lane events,
  // phantom coin flips happen at admit) pins the cycle-by-cycle walk.
  const bool ff_enabled = opts_.fast_forward && !fault_sched_.any();
  const bool parallel = workers_ > 1;
  if (parallel) start_workers();

  Cycle now = start_cycle;
  try {
    while (work_remaining()) {
      if (now >= opts_.max_cycles) {
        throw Error(
            "Mp5Simulator: max_cycles exceeded (deadlock or overload?)");
      }
      // 0a. Idle-cycle fast-forward: with the switch fully drained, every
      //     cycle until the next event is a provable no-op — jump there.
      //     (next_event_cycle clamps the jump to the next checkpoint
      //     boundary; the boundary cycle itself is then a no-op walk, so
      //     checkpointed and checkpoint-free runs stay bit-identical.)
      //     The event engine skips unconditionally (it is the engine's
      //     defining move) and under fault plans too, with the skip target
      //     further clamped at every per-cycle-observable fault boundary;
      //     activity_all_clear() stands in for the per-FIFO drain scan.
      if (event_engine_) {
        if (live_packets_ == 0 && source_->peek() != nullptr &&
            activity_all_clear()) {
          now = next_event_cycle_event(now);
          if (now >= opts_.max_cycles) {
            throw Error(
                "Mp5Simulator: max_cycles exceeded (deadlock or overload?)");
          }
        }
      } else if (ff_enabled && live_packets_ == 0 &&
                 source_->peek() != nullptr && fully_drained()) {
        now = next_event_cycle(now);
        if (now >= opts_.max_cycles) {
          throw Error(
              "Mp5Simulator: max_cycles exceeded (deadlock or overload?)");
        }
      }
      // 0b. Periodic checkpoint, at the top of the cycle: the blob captures
      //     the state *before* this cycle's fault events and arrivals, so a
      //     resumed run replays them identically.
      if (opts_.checkpoint_interval != 0 && now >= next_checkpoint_) {
        do_checkpoint(now);
        next_checkpoint_ = ((now / opts_.checkpoint_interval) + 1) *
                           opts_.checkpoint_interval;
      }
      step_cycle(now, parallel);
      ++now;
    }
  } catch (...) {
    source_ = nullptr;
    stop_workers();
    throw;
  }
  return finalize(now);
}

void Mp5Simulator::step_cycle(Cycle now, bool parallel) {
  // 0c. Scheduled faults fire at the cycle boundary, before arrivals,
  //     so packets admitted this cycle already see the new lane set.
  if (fault_sched_.any()) {
    apply_fault_events(now);
    if (fault_sched_.has_pressure()) {
      const std::size_t cap = fault_sched_.pressure_capacity(now);
      if (cap != current_pressure_) {
        current_pressure_ = cap;
        for (auto& fifo : fifos_) fifo.set_pressure_capacity(cap);
      }
    }
  }
  // 1. Arrivals for this cycle (the source yields items pre-sorted by
  //    (time, port); file sources enforce that on read).
  for (const TraceItem* item;
       (item = source_->peek()) != nullptr &&
       item->arrival_time < static_cast<double>(now + 1);
       source_->advance()) {
    const bool first = result_.offered == 0;
    admit(*item, now);
    if (first) result_.first_arrival = now;
    result_.last_arrival = now;
  }
  // 1b. Phantom channel: deliver phantoms whose hop count has elapsed.
  if (opts_.realistic_phantom_channel) deliver_due_phantoms(now);
  // 2. Ingress: each live pipeline admits one packet into the AR stage.
  for (PipelineId p = 0; p < k_; ++p) {
    if (!lane_alive_[p]) continue;
    if (!ingress_[p].empty()) {
      push_arrival(p, 0, ingress_[p].front(), p);
      ingress_[p].pop_front();
    }
  }
  // 3. Stage processing, last stage first so packets move one stage per
  //    cycle (outputs land in already-processed downstream cells). Dead
  //    lanes are skipped (their queues were drained at failure time).
  //    The event engine first settles the stalled-but-empty cells it will
  //    not visit (before the walk mutates any activity bit), then walks
  //    only the active cells — and, in parallel mode, dispatches only the
  //    workers whose lane blocks are active: cycles where at most one
  //    block is busy run on the main thread with direct effects and no
  //    barrier at all (the conservative-lookahead horizon).
  if (event_engine_) account_skipped_stalls(now);
  if (!parallel) {
    if (event_engine_) {
      walk_lanes_event(0, static_cast<PipelineId>(k_), now, nullptr);
    } else {
      for (StageId st = num_stages_; st-- > 0;) {
        for (PipelineId p = 0; p < k_; ++p) {
          if (!lane_alive_[p]) continue;
          step_cell(p, st, now, nullptr);
        }
      }
    }
  } else if (event_engine_) {
    // One OR-pass over the bitmap answers "which lane blocks are busy?"
    // for every worker at once; per-worker rescans would cost workers ×
    // the walk's own scan on cycles that mostly visit nothing.
    for (std::uint32_t widx = 0; widx < lane_words_; ++widx) {
      std::uint64_t acc = 0;
      for (StageId st = 0; st < num_stages_; ++st) {
        acc |= active_[static_cast<std::size_t>(st) * lane_words_ + widx].load(
            std::memory_order_relaxed);
      }
      busy_words_[widx] = acc;
    }
    std::uint32_t nbusy = 0;
    std::uint32_t only_busy = 0;
    for (std::uint32_t w = 0; w < workers_; ++w) {
      busy_scratch_[w] = 0;
      for (const auto& [widx, mask] : worker_masks_[w]) {
        if ((busy_words_[widx] & mask) != 0) {
          busy_scratch_[w] = 1;
          break;
        }
      }
      if (busy_scratch_[w]) {
        ++nbusy;
        only_busy = w;
      }
    }
    if (nbusy == 1) {
      // Exactly one lane block can make progress: the dense walk over the
      // other blocks would be a pure no-op, so the merge order degenerates
      // to this block's own lane-ascending order. Run it inline with
      // direct effects — no staging, no barrier, no wakeups.
      const auto [lo, hi] = lane_range_[only_busy];
      walk_lanes_event(lo, hi, now, nullptr);
    } else if (nbusy > 1 && active_cell_count() < kDispatchMinActiveCells) {
      // Several blocks are busy but barely: the per-cell work cannot
      // amortize a barrier round-trip, so walk the busy blocks on this
      // thread with the same staged per-worker effects and merge them in
      // the same worker-ascending order — bit-identical to a dispatch,
      // minus the wakeup latency.
      for (std::uint32_t w = 0; w < workers_; ++w) {
        if (busy_scratch_[w]) run_worker_lanes(w, now);
      }
      merge_worker_effects(now);
    } else if (nbusy > 1) {
      shared_now_ = now;
      ++next_phase_;
      pending_.store(nbusy - (busy_scratch_[0] ? 1 : 0),
                     std::memory_order_relaxed);
      for (std::uint32_t w = 1; w < workers_; ++w) {
        if (busy_scratch_[w]) {
          worker_phase_[w].store(next_phase_, std::memory_order_release);
        }
      }
      dispatch_workers();
      if (busy_scratch_[0]) run_worker_lanes(0, now);
      wait_for_workers();
      for (auto& err : worker_error_) {
        if (err) {
          std::exception_ptr e = err;
          err = nullptr;
          std::rethrow_exception(e);
        }
      }
      merge_worker_effects(now);
    }
  } else {
    shared_now_ = now;
    ++next_phase_;
    pending_.store(workers_ - 1, std::memory_order_relaxed);
    for (std::uint32_t w = 1; w < workers_; ++w) {
      worker_phase_[w].store(next_phase_, std::memory_order_release);
    }
    dispatch_workers();
    run_worker_lanes(0, now); // the main thread is worker 0
    wait_for_workers();
    for (auto& err : worker_error_) {
      if (err) {
        std::exception_ptr e = err;
        err = nullptr;
        std::rethrow_exception(e);
      }
    }
    merge_worker_effects(now);
  }
  // 4. Periodic dynamic state sharding (Figure 6).
  if (opts_.remap_period != 0 && (now + 1) % opts_.remap_period == 0) {
    const std::size_t moves = opts_.reference_rebalance
                                  ? state_->rebalance_reference()
                                  : state_->rebalance();
    result_.remap_moves += moves;
    if (moves != 0) {
      emit(TimelineEvent::Kind::kRemap, now, 0, 0, kInvalidSeqNo,
           static_cast<std::uint64_t>(moves));
    }
  }
  // 5. Cycle-end watchdog.
  if (opts_.paranoid_checks) check_invariants(now);
}

SimResult Mp5Simulator::finalize(Cycle now) {
  source_ = nullptr;
  if (!pool_.empty()) {
    for (auto& ctx : worker_ctx_) {
      c1_.absorb(ctx.c1);
      ctx.c1 = C1Scratch{};
    }
    stop_workers();
  }

  result_.cycles_run = now;
  result_.final_registers = state_->storage();
  result_.c1_violating_packets = c1_.violating_packets();
  for (const auto& fifo : fifos_) {
    result_.max_queue_depth =
        std::max(result_.max_queue_depth, fifo.high_water());
  }
  if (telem_ != nullptr) {
    tscope_.gauge("sim.cycles_run").set(static_cast<double>(now));
    tscope_.gauge("sim.max_queue_depth")
        .set(static_cast<double>(result_.max_queue_depth));
    tscope_.gauge("sim.normalized_throughput")
        .set(result_.normalized_throughput());
    tscope_.gauge("sim.arena_peak_live")
        .set(static_cast<double>(arena_.peak_live()));
    tscope_.gauge("sim.arena_recycled_allocs")
        .set(static_cast<double>(arena_.recycled_allocs()));
  }
  std::sort(result_.egress.begin(), result_.egress.end(),
            [](const EgressRecord& a, const EgressRecord& b) {
              return a.seq < b.seq;
            });
  std::sort(result_.fault_drops.begin(), result_.fault_drops.end(),
            [](const SimResult::FaultDrop& a, const SimResult::FaultDrop& b) {
              return a.seq < b.seq;
            });
  return std::move(result_);
}

// ---------------------------------------------------------------------------
// Idle-cycle fast-forward
// ---------------------------------------------------------------------------

bool Mp5Simulator::fully_drained() const {
  // live_packets_ == 0 is checked by the caller, but cancelled zombie
  // phantoms may still be queued — and reclaiming them consumes real
  // (wasted) pop cycles, so the clock must tick through them.
  for (const auto& fifo : fifos_) {
    if (fifo.size() != 0) return false;
  }
  return true;
}

Cycle Mp5Simulator::next_event_cycle(Cycle now) {
  // Next trace arrival: admitted in the cycle its arrival time truncates
  // to (the run loop admits while arrival_time < now + 1). The caller
  // guarantees the source is non-empty.
  Cycle target = static_cast<Cycle>(source_->peek()->arrival_time);
  // A cancelled phantom still in flight is delivered as a zombie at its
  // scheduled cycle and costs a wasted pop afterwards.
  if (const auto deliver = channel_next_deliver(); deliver.has_value()) {
    target = std::min(target, *deliver);
  }
  // Remap boundaries are observable while the shard map's window is dirty
  // (the rebalance could move shards or reset live counters) or telemetry
  // counts rebalance runs; with a clean window and no telemetry the
  // rebalance is a provable no-op (zero loads => zero moves, nothing to
  // reset) and the boundary can be skipped.
  if (opts_.remap_period != 0 && (state_->window_dirty() || telem_ != nullptr)) {
    const Cycle period = opts_.remap_period;
    const Cycle boundary = ((now + period) / period) * period - 1;
    target = std::min(target, boundary);
  }
  // Never jump past a checkpoint boundary: the checkpoint must observe the
  // state at exactly that cycle. Landing there is behavior-neutral — the
  // switch is drained, so the boundary cycle is an empty walk.
  if (opts_.checkpoint_interval != 0) {
    target = std::min(target, next_checkpoint_);
  }
  target = std::min<Cycle>(target, opts_.max_cycles);
  return std::max(target, now);
}

// ---------------------------------------------------------------------------
// Event engine (SimOptions::engine == kEvent)
// ---------------------------------------------------------------------------

bool Mp5Simulator::activity_all_clear() const {
  for (const auto& word : active_) {
    if (word.load(std::memory_order_relaxed) != 0) return false;
  }
  return true;
}

void Mp5Simulator::rebuild_activity() {
  if (!event_engine_) return;
  for (auto& word : active_) word.store(0, std::memory_order_relaxed);
  for (PipelineId p = 0; p < k_; ++p) {
    for (StageId st = 0; st < num_stages_; ++st) {
      const std::size_t c = cell(p, st);
      if (fifos_[c].size() != 0 || arrival_count_[c] != 0) {
        mark_active(p, st);
      }
    }
  }
}

void Mp5Simulator::walk_lanes_event(PipelineId lo, PipelineId hi, Cycle now,
                                    WorkerCtx* ctx) {
  // The dense walk's order — stages descending, lanes ascending — over the
  // set bits only. A visited cell's bit is cleared once the cell is empty
  // again; bits this walk sets itself (a processed packet advancing into
  // stage st + 1) always land in rows already behind the cursor, exactly
  // like arrivals landing in already-processed downstream cells.
  for (StageId st = num_stages_; st-- > 0;) {
    const std::size_t row = static_cast<std::size_t>(st) * lane_words_;
    for (std::uint32_t widx = lo >> 6; widx <= (hi - 1) >> 6; ++widx) {
      const std::uint32_t base = widx << 6;
      std::uint64_t word = active_[row + widx].load(std::memory_order_relaxed);
      if (lo > base) word &= ~std::uint64_t{0} << (lo - base);
      if (hi - base < 64) word &= (std::uint64_t{1} << (hi - base)) - 1;
      while (word != 0) {
        const PipelineId p =
            static_cast<PipelineId>(base + std::countr_zero(word));
        word &= word - 1;
        if (!lane_alive_[p]) continue; // failure already drained the lane
        step_cell(p, st, now, ctx);
        if (fifos_[cell(p, st)].size() == 0) clear_active(p, st);
      }
    }
  }
}

void Mp5Simulator::account_skipped_stalls(Cycle now) {
  if (!fault_sched_.has_stalls()) return;
  const auto& stalls = fault_sched_.stalls();
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < stalls.size(); ++i) {
    const auto& s = stalls[i];
    if (now < s.from || now >= s.until) continue;
    if (s.pipeline >= k_ || s.stage >= num_stages_) continue;
    if (!lane_alive_[s.pipeline]) continue;
    if (cell_active(s.pipeline, s.stage)) continue; // the walk counts it
    // One stalled cycle per *cell* per cycle, however many windows cover
    // it — the same dedup the dense walk gets from its per-cell predicate.
    bool counted = false;
    for (std::size_t j = 0; j < i && !counted; ++j) {
      const auto& t = stalls[j];
      counted = t.pipeline == s.pipeline && t.stage == s.stage &&
                now >= t.from && now < t.until;
    }
    if (!counted) ++skipped;
  }
  if (skipped != 0) {
    result_.stalled_cycles += skipped;
    MP5_TELEM_ADD(t_stall_cycles_, skipped);
  }
}

Cycle Mp5Simulator::next_event_cycle_event(Cycle now) {
  Cycle target = next_event_cycle(now);
  // Unlike lockstep fast-forward, the event engine skips under fault
  // plans; the extra clamps pin every per-cycle-observable fault boundary.
  // Lane fail/recover events mutate state at their exact cycle.
  const auto& events = fault_sched_.lane_events();
  if (fault_cursor_ < events.size()) {
    target = std::min(target, events[fault_cursor_].cycle);
  }
  // Every cycle covered by a stall window of an alive lane increments
  // stalled_cycles, so covered cycles are stepped one by one. Pressure
  // windows need no clamp: the capacity clamp only gates pushes, and a
  // skipped stretch is drained with no arrivals to push.
  for (const auto& s : fault_sched_.stalls()) {
    if (s.until <= now || s.stage >= num_stages_) continue;
    if (s.pipeline >= k_ || !lane_alive_[s.pipeline]) continue;
    target = std::min(target, std::max(s.from, now));
  }
  return std::max(target, now);
}

std::uint32_t Mp5Simulator::active_cell_count() const {
  std::uint32_t count = 0;
  for (const auto& word : active_) {
    count += static_cast<std::uint32_t>(
        std::popcount(word.load(std::memory_order_relaxed)));
  }
  return count;
}

// ---------------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------------

namespace {
/// Iterations of the dispatch/done spin before falling back to a condvar
/// sleep. Big enough that a back-to-back busy cycle never pays a futex
/// round-trip; small enough that an idle worker (or a pool parked by the
/// event engine between lookahead horizons) stops burning its core within
/// microseconds.
constexpr std::uint32_t kBarrierSpinLimit = 2048;
} // namespace

void Mp5Simulator::start_workers() {
  if (!pool_.empty()) return;
  stop_.store(false, std::memory_order_relaxed);
  worker_error_.assign(workers_, nullptr);
  for (auto& ctx : worker_ctx_) {
    ctx.clear_cycle();
    ctx.routed.reserve(static_cast<std::size_t>(num_stages_) * k_);
  }
  // Reset the dispatch generations here, on the dispatching thread, before
  // any worker exists: a worker reading its slot after spawn could
  // otherwise observe a generation that was already advanced for the first
  // dispatch and sleep through it forever.
  next_phase_ = 0;
  for (auto& ph : worker_phase_) ph.store(0, std::memory_order_relaxed);
  pool_.reserve(workers_ - 1);
  for (std::uint32_t w = 1; w < workers_; ++w) {
    pool_.emplace_back([this, w] { worker_loop(w, 0); });
  }
}

void Mp5Simulator::stop_workers() {
  if (pool_.empty()) return;
  stop_.store(true, std::memory_order_release);
  {
    // The empty critical section pairs with the predicate check inside
    // cv_dispatch_.wait: any worker past its predicate-false check is
    // still holding the mutex, so the notify below cannot be lost.
    std::lock_guard<std::mutex> lock(pool_mtx_);
  }
  cv_dispatch_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
}

void Mp5Simulator::dispatch_workers() {
  // Callers already advanced the chosen workers' phase slots. The empty
  // critical section orders those stores before any sleeper's predicate
  // re-check, closing the check-then-sleep race without holding the lock
  // across the stores.
  {
    std::lock_guard<std::mutex> lock(pool_mtx_);
  }
  cv_dispatch_.notify_all();
}

void Mp5Simulator::wait_for_workers() {
  std::uint32_t spins = 0;
  while (pending_.load(std::memory_order_acquire) != 0) {
    if (++spins >= kBarrierSpinLimit) {
      std::unique_lock<std::mutex> lock(pool_mtx_);
      cv_done_.wait(lock, [this] {
        return pending_.load(std::memory_order_acquire) == 0;
      });
      return;
    }
    std::this_thread::yield();
  }
}

void Mp5Simulator::worker_loop(std::uint32_t w, std::uint64_t seen) {
  // Spinning exists to catch a back-to-back dispatch right after a busy
  // cycle; a worker that has not run yet (or whose last wait already went
  // to sleep) blocks immediately instead — the event engine can go whole
  // runs without dispatching this worker, and its startup spin would just
  // steal cycles from the main thread on small hosts.
  bool fresh_off_work = false;
  while (true) {
    // Spin briefly (yielding, so the pool degrades gracefully when the
    // host has fewer cores than workers), then block on the condvar: an
    // idle worker costs no CPU once the spin budget is spent.
    std::uint64_t cur;
    std::uint32_t spins = 0;
    while ((cur = worker_phase_[w].load(std::memory_order_acquire)) == seen &&
           !stop_.load(std::memory_order_acquire)) {
      if (!fresh_off_work || ++spins >= kBarrierSpinLimit) {
        std::unique_lock<std::mutex> lock(pool_mtx_);
        cv_dispatch_.wait(lock, [this, w, seen] {
          return worker_phase_[w].load(std::memory_order_acquire) != seen ||
                 stop_.load(std::memory_order_acquire);
        });
        spins = 0;
        fresh_off_work = false;
      } else {
        std::this_thread::yield();
      }
    }
    if (cur == seen) break; // stop requested with no new phase
    seen = cur;
    fresh_off_work = true;
    try {
      run_worker_lanes(w, shared_now_);
    } catch (...) {
      worker_error_[w] = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_release) == 1) {
      // Last worker through the barrier: wake the main thread if it
      // already gave up spinning (same empty-critical-section pairing as
      // dispatch).
      {
        std::lock_guard<std::mutex> lock(pool_mtx_);
      }
      cv_done_.notify_one();
    }
  }
}

void Mp5Simulator::run_worker_lanes(std::uint32_t w, Cycle now) {
  WorkerCtx& ctx = worker_ctx_[w];
  const auto [lo, hi] = lane_range_[w];
  if (event_engine_) {
    walk_lanes_event(lo, hi, now, &ctx);
    return;
  }
  for (StageId st = num_stages_; st-- > 0;) {
    for (PipelineId p = lo; p < hi; ++p) {
      if (!lane_alive_[p]) continue;
      step_cell(p, st, now, &ctx);
    }
  }
}

void Mp5Simulator::merge_worker_effects(Cycle now) {
  // Worker order equals source-lane order (contiguous lane blocks), and
  // each worker recorded its effects in its own processing order — so this
  // serial replay reproduces exactly the effect order of the sequential
  // engine's lane-ascending walk. Every applied operation either commutes
  // (counter adds, in-flight decrements, per-seq FIFO cancels) or is only
  // observable next cycle (arrival pushes), so category grouping is safe.
  for (std::uint32_t w = 0; w < workers_; ++w) {
    WorkerCtx& ctx = worker_ctx_[w];
    result_.blocked_cycles += ctx.blocked;
    result_.wasted_cycles += ctx.wasted;
    result_.stalled_cycles += ctx.stalled;
    result_.steers += ctx.steers;
    for (const auto& [reg, index] : ctx.completions) {
      state_->note_completed(reg, index);
    }
    for (const auto& r : ctx.routed) {
      push_arrival(r.dest, r.stage, r.ref, r.from_lane);
    }
    for (const auto& sc : ctx.cancels) apply_staged_cancel(sc, now);
    for (const auto& d : ctx.drops) drop_packet(d.ref, d.cause, nullptr);
    for (const PacketRef ref : ctx.egressed) egress_packet(ref, now, nullptr);
    ctx.clear_cycle();
  }
}

void Mp5Simulator::apply_staged_cancel(const WorkerCtx::StagedCancel& sc,
                                       Cycle /*now*/) {
  // Serial tail of cancel_entry for a phantom whose sharers all cancelled
  // during the parallel lane phase.
  if (sc.maybe_in_channel) {
    const ChannelKey key{sc.seq, sc.pipeline, sc.stage};
    if (lost_phantoms_[sc.pipeline].erase(key) != 0) return;
    if (auto it = channel_index_.find(key); it != channel_index_.end()) {
      channel_slots_[it->second].cancelled = true;
      return;
    }
    // Already delivered: fall through to the FIFO cancel.
  }
  fifo_at(sc.pipeline, sc.stage).cancel(sc.seq);
}

// ---------------------------------------------------------------------------
// Phantom channel (slot pool + lazy-deletion min-heap)
// ---------------------------------------------------------------------------

namespace {
/// Min-heap order on (deliver, seq) for std::*_heap (which build max-heaps,
/// hence the inverted comparisons).
constexpr auto kChannelDueLater = [](const auto& a, const auto& b) {
  if (a.deliver != b.deliver) return a.deliver > b.deliver;
  return a.seq > b.seq;
};
} // namespace

void Mp5Simulator::channel_push(Cycle deliver, const PendingPhantom& rec) {
  std::uint32_t slot;
  if (!channel_free_.empty()) {
    slot = channel_free_.back();
    channel_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(channel_slots_.size());
    channel_slots_.emplace_back();
  }
  PendingPhantom& dst = channel_slots_[slot];
  dst = rec;
  dst.stamp = channel_next_stamp_++;
  channel_heap_.push_back(ChannelDue{deliver, dst.seq, slot, dst.stamp});
  std::push_heap(channel_heap_.begin(), channel_heap_.end(), kChannelDueLater);
  channel_index_[ChannelKey{dst.seq, dst.pipeline, dst.stage}] = slot;
  ++channel_live_;
}

void Mp5Simulator::channel_free_slot(std::uint32_t slot) {
  channel_slots_[slot].stamp = 0; // invalidates any heap entry lazily
  channel_free_.push_back(slot);
  --channel_live_;
}

std::optional<Cycle> Mp5Simulator::channel_next_deliver() {
  while (!channel_heap_.empty()) {
    const ChannelDue& top = channel_heap_.front();
    if (channel_slots_[top.slot].stamp == top.stamp) return top.deliver;
    std::pop_heap(channel_heap_.begin(), channel_heap_.end(),
                  kChannelDueLater);
    channel_heap_.pop_back();
  }
  return std::nullopt;
}

void Mp5Simulator::deliver_due_phantoms(Cycle now) {
  // Collect everything due, then push in global arrival (seq) order so
  // every FIFO receives its phantoms in generation order (Invariant 1).
  due_scratch_.clear();
  while (!channel_heap_.empty() && channel_heap_.front().deliver <= now) {
    const ChannelDue top = channel_heap_.front();
    std::pop_heap(channel_heap_.begin(), channel_heap_.end(),
                  kChannelDueLater);
    channel_heap_.pop_back();
    PendingPhantom& rec = channel_slots_[top.slot];
    if (rec.stamp != top.stamp) continue; // stale: erased/recycled slot
    due_scratch_.push_back(rec);
    channel_index_.erase(ChannelKey{rec.seq, rec.pipeline, rec.stage});
    channel_free_slot(top.slot);
  }
  if (due_scratch_.empty()) return;
  std::sort(due_scratch_.begin(), due_scratch_.end(),
            [](const PendingPhantom& a, const PendingPhantom& b) {
              return a.seq < b.seq;
            });
  for (const auto& pending : due_scratch_) {
    auto& fifo = fifo_at(pending.pipeline, pending.stage);
    if (!fifo.push_phantom(pending.seq, pending.reg, pending.index,
                           pending.lane, now)) {
      ++result_.dropped_phantom;
      continue; // the data packet will miss its placeholder and be dropped
    }
    if (event_engine_) mark_active(pending.pipeline, pending.stage);
    emit(TimelineEvent::Kind::kPhantomPush, now, pending.pipeline,
         pending.stage, pending.seq);
    if (pending.cancelled) {
      // Cancelled while in flight: arrives as a zombie (one wasted pop).
      fifo.cancel(pending.seq);
      emit(TimelineEvent::Kind::kCancel, now, pending.pipeline,
           pending.stage, pending.seq);
    }
  }
}

// ---------------------------------------------------------------------------
// Fault injection & graceful degradation
// ---------------------------------------------------------------------------

void Mp5Simulator::apply_fault_events(Cycle now) {
  const auto& events = fault_sched_.lane_events();
  while (fault_cursor_ < events.size() &&
         events[fault_cursor_].cycle <= now) {
    const auto& event = events[fault_cursor_++];
    if (event.fail) {
      fail_lane(event.pipeline, now);
    } else {
      recover_lane(event.pipeline, now);
    }
  }
}

void Mp5Simulator::fail_lane(PipelineId p, Cycle now) {
  emit(TimelineEvent::Kind::kLaneFail, now, p, 0, kInvalidSeqNo);
  ++result_.pipeline_failures;
  MP5_TELEM_INC(t_lane_fail_);
  fail_marker_ = now;
  awaiting_egress_after_failure_ = true;

  // 1. Everything physically inside the lane dies with it.
  std::vector<PacketRef> doomed;
  for (const PacketRef ref : ingress_[p]) doomed.push_back(ref);
  ingress_[p].clear();
  for (StageId st = 0; st < num_stages_; ++st) {
    const std::size_t c = cell(p, st);
    for (std::uint32_t i = 0; i < arrival_count_[c]; ++i) {
      doomed.push_back(arrival_slots_[c * k_ + i].ref);
    }
    arrival_count_[c] = 0;
    for (const PacketRef ref : fifos_[c].drain_all()) doomed.push_back(ref);
    if (event_engine_) clear_active(p, st);
  }

  // 2. Phantoms in flight toward the dead lane vanish with its channel
  //    ports (their packets are swept below: the plan entry is live).
  for (auto it = channel_index_.begin(); it != channel_index_.end();) {
    if (channel_slots_[it->second].pipeline == p) {
      channel_free_slot(it->second);
      it = channel_index_.erase(it);
    } else {
      ++it;
    }
  }
  lost_phantoms_[p].clear();

  // 3. Sweep the survivors for packets doomed to visit the dead lane: a
  //    live plan entry targeting it can no longer be served. Dropping them
  //    now (rather than at steer time) keeps the in-flight counters exact
  //    for the remap below.
  const auto doomed_pred = [this, p](PacketRef ref) {
    for (const auto& e : arena_.get(ref).plan) {
      if (entry_live(e) && e.pipeline == p) return true;
    }
    return false;
  };
  for (PipelineId q = 0; q < k_; ++q) {
    if (q == p || !lane_alive_[q]) continue;
    auto& ing = ingress_[q];
    for (auto it = ing.begin(); it != ing.end();) {
      if (doomed_pred(*it)) {
        doomed.push_back(*it);
        it = ing.erase(it);
      } else {
        ++it;
      }
    }
    for (StageId st = 0; st < num_stages_; ++st) {
      const std::size_t c = cell(q, st);
      const std::uint32_t n = arrival_count_[c];
      std::uint32_t kept = 0;
      for (std::uint32_t i = 0; i < n; ++i) {
        const ArrivedRef a = arrival_slots_[c * k_ + i];
        if (doomed_pred(a.ref)) {
          doomed.push_back(a.ref);
        } else {
          arrival_slots_[c * k_ + kept++] = a;
        }
      }
      arrival_count_[c] = kept;
      for (const PacketRef ref : fifos_[c].extract_data_if(doomed_pred)) {
        doomed.push_back(ref);
      }
    }
  }

  // 4. Account the losses. Cancelling each packet's remaining phantoms
  //    also releases its in-flight counters, clearing the §3.4 guard.
  for (const PacketRef ref : doomed) {
    emit(TimelineEvent::Kind::kDropFault, now, p, 0, arena_.get(ref).seq);
    drop_packet(ref, DropCause::kFault, nullptr);
  }

  // 5. Atomically re-home the dead lane's active indices to survivors.
  lane_alive_[p] = false;
  result_.fault_remapped_indices += state_->fail_pipeline(p);
}

void Mp5Simulator::recover_lane(PipelineId p, Cycle now) {
  state_->recover_pipeline(p);
  lane_alive_[p] = true;
  ++result_.pipeline_recoveries;
  MP5_TELEM_INC(t_lane_recover_);
  emit(TimelineEvent::Kind::kLaneRecover, now, p, 0, kInvalidSeqNo);
}

PipelineId Mp5Simulator::spray_lane(SeqNo seq) const {
  std::uint32_t alive = 0;
  for (PipelineId p = 0; p < k_; ++p) {
    if (lane_alive_[p]) ++alive;
  }
  std::uint32_t pick = static_cast<std::uint32_t>(seq % alive);
  for (PipelineId p = 0; p < k_; ++p) {
    if (!lane_alive_[p]) continue;
    if (pick == 0) return p;
    --pick;
  }
  throw Error("Mp5Simulator::spray_lane: no live pipeline");
}

void Mp5Simulator::check_invariants(Cycle now) const {
  // Per-lane seq ordering (Invariant 1) is a property of the phantom
  // mechanism: the no-D4 ablation queues data packets in stage-arrival
  // order, and injected phantom delays legitimately reorder a lane. Every
  // other structural property must still hold.
  const bool check_order =
      opts_.phantoms && opts_.faults.phantom_delay_rate == 0.0;
  std::uint64_t in_containers = 0;
  for (PipelineId p = 0; p < k_; ++p) {
    if (!lane_alive_[p] && !ingress_[p].empty()) {
      throw InvariantError("dead-lane", now,
                           "dead lane " + std::to_string(p) +
                               " has queued ingress packets");
    }
    in_containers += ingress_[p].size();
    for (StageId st = 0; st < num_stages_; ++st) {
      const std::size_t c = cell(p, st);
      const auto& fifo = fifos_[c];
      if (!lane_alive_[p] &&
          (fifo.size() != 0 || arrival_count_[c] != 0)) {
        throw InvariantError("dead-lane", now,
                             "dead lane " + std::to_string(p) +
                                 " has queued entries at stage " +
                                 std::to_string(st));
      }
      in_containers += arrival_count_[c];
      if (event_engine_ && !cell_active(p, st) &&
          (fifo.size() != 0 || arrival_count_[c] != 0)) {
        // A clear activity bit must prove the cell empty — a stale clear
        // would make the event walk silently skip real work.
        throw InvariantError("event-activity", now,
                             "cell (" + std::to_string(p) + ", " +
                                 std::to_string(st) +
                                 ") holds entries but its activity bit is "
                                 "clear");
      }
      fifo.check_invariants(now, check_order);
      fifo.for_each_entry([&](const FifoEntry& entry) {
        if (entry.kind != FifoEntry::Kind::kData) return;
        ++in_containers;
        if (!arena_.live(entry.ref)) {
          throw InvariantError("arena", now,
                               "queued FIFO entry addresses a released "
                               "arena slot");
        }
        const Packet& pkt = arena_.get(entry.ref);
        // Invariant 2: only packets awaiting stateful processing at this
        // very cell may be queued here.
        bool awaiting_here = false;
        for (const auto& e : pkt.plan) {
          if (!entry_live(e)) continue;
          awaiting_here = e.stage == st && e.pipeline == p;
          break;
        }
        if (!awaiting_here) {
          throw InvariantError(
              "invariant-2", now,
              "queued packet seq " + std::to_string(pkt.seq) +
                  " is not awaiting stateful processing at (" +
                  std::to_string(p) + ", " + std::to_string(st) + ")");
        }
      });
    }
  }
  if (in_containers != live_packets_) {
    throw InvariantError("live-packets", now,
                         std::to_string(live_packets_) +
                             " packets live but " +
                             std::to_string(in_containers) + " queued");
  }
  if (in_containers != arena_.live_count()) {
    throw InvariantError("arena", now,
                         std::to_string(arena_.live_count()) +
                             " live arena slots but " +
                             std::to_string(in_containers) +
                             " packets queued");
  }
  if (opts_.realistic_phantom_channel) {
    if (channel_index_.size() != channel_live_) {
      throw InvariantError("phantom-channel", now,
                           "channel index size " +
                               std::to_string(channel_index_.size()) +
                               " != live channel records " +
                               std::to_string(channel_live_));
    }
    for (const auto& [key, slot] : channel_index_) {
      const PendingPhantom& rec = channel_slots_[slot];
      if (rec.stamp == 0 || rec.seq != key.seq ||
          rec.pipeline != key.pipeline || rec.stage != key.stage) {
        throw InvariantError("phantom-channel", now,
                             "channel index entry for seq " +
                                 std::to_string(key.seq) +
                                 " addresses the wrong record");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-cycle packet movement
// ---------------------------------------------------------------------------

bool Mp5Simulator::work_remaining() {
  return live_packets_ > 0 ||
         (source_ != nullptr && source_->peek() != nullptr);
}

void Mp5Simulator::push_arrival(PipelineId dest, StageId st, PacketRef ref,
                                PipelineId from_lane) {
  const std::size_t c = cell(dest, st);
  const std::uint32_t n = arrival_count_[c];
  if (n >= k_) {
    // One packet per predecessor cell per cycle is a structural bound of
    // the crossbar; more means a routing bug, not congestion.
    throw Error("Mp5Simulator: arrival slots overflow at cell (" +
                std::to_string(dest) + ", " + std::to_string(st) + ")");
  }
  arrival_slots_[c * k_ + n] = ArrivedRef{ref, from_lane};
  arrival_count_[c] = n + 1;
  if (event_engine_) mark_active(dest, st);
}

void Mp5Simulator::admit(const TraceItem& item, Cycle now) {
  const PacketRef ref = arena_.alloc();
  Packet& pkt = arena_.get(ref);
  pkt.seq = next_seq_++;
  pkt.arrival_cycle = now;
  pkt.port = item.port;
  pkt.size_bytes = item.size_bytes;
  pkt.flow = item.flow;
  pkt.headers.assign(prog_->pvsm.num_slots(), 0);
  for (std::size_t i = 0; i < item.fields.size() && i < pkt.headers.size();
       ++i) {
    pkt.headers[i] = item.fields[i];
  }

  // Address resolution: execute the hoisted stateless slices. They are
  // pure, so no register file is touched; pass the real one for interface
  // uniformity.
  for (const auto& instr : prog_->resolver) {
    ir::exec_instr(instr, pkt.headers, *state_, prog_->pvsm.registers);
  }

  // Build the access plan. The ingress spray covers live lanes only, so a
  // failed pipeline degrades throughput to ~(k-1)/k instead of blackholing
  // 1/k of the traffic.
  const PipelineId admit_lane =
      opts_.naive_single_pipeline ? 0 : spray_lane(pkt.seq);
  for (const auto& desc : prog_->accesses) {
    if (desc.guard != ir::kNoSlot && desc.guard_resolvable) {
      const bool truthy =
          pkt.headers[static_cast<std::size_t>(desc.guard)] != 0;
      if (desc.guard_negate ? truthy : !truthy) continue; // branch not taken
    }
    PlannedAccess acc;
    acc.reg = desc.reg;
    acc.stage = desc.stage;
    acc.index = desc.index_resolvable
                    ? ir::resolve_index(desc.index, pkt.headers,
                                        prog_->pvsm.registers[desc.reg].size)
                    : kUnresolvedIndex;
    acc.pipeline = state_->pipeline_of(desc.reg, acc.index);
    if (desc.guard != ir::kNoSlot && !desc.guard_resolvable) {
      acc.guard = GuardStatus::kConservative;
      acc.guard_known_after_stage = desc.guard_known_after_stage;
      acc.guard_slot = desc.guard;
      acc.guard_negate = desc.guard_negate;
    }
    state_->note_resolved(desc.reg, acc.index);
    pkt.plan.push_back(acc);
  }

  // Phantom generation (D4): one phantom per (stage, pipeline) group — a
  // packet that must access two co-located arrays in one stage holds a
  // single place in that stage's FIFO.
  if (opts_.phantoms) {
    PipelineId lane_pred = admit_lane;
    for (std::size_t i = 0; i < pkt.plan.size(); ++i) {
      auto& acc = pkt.plan[i];
      std::size_t owner = i;
      for (std::size_t j = 0; j < i; ++j) {
        if (pkt.plan[j].stage == acc.stage &&
            pkt.plan[j].pipeline == acc.pipeline) {
          owner = pkt.plan[j].phantom_owner;
          break;
        }
      }
      acc.phantom_owner = owner;
      acc.phantom_lane = lane_pred;
      if (owner == i) {
        if (opts_.realistic_phantom_channel) {
          // The phantom hops one stage per cycle on its own channel: it
          // reaches stage s after s cycles, always ahead of the data
          // packet (which needs ingress + s processing cycles).
          acc.phantom_delivered = false;
          const ChannelKey key{pkt.seq, acc.pipeline, acc.stage};
          if (opts_.faults.phantom_loss_rate > 0.0 &&
              fault_rng_.chance(opts_.faults.phantom_loss_rate)) {
            // Injected channel loss: the phantom never arrives. The data
            // packet finds no placeholder at its stateful stage and is
            // dropped there with fault accounting (instead of
            // deadlocking behind a hole in the order).
            lost_phantoms_[acc.pipeline].insert(key);
            ++result_.phantom_lost;
            MP5_TELEM_INC(t_phantom_lost_);
          } else {
            Cycle deliver = now + acc.stage;
            if (opts_.faults.phantom_delay_rate > 0.0 &&
                fault_rng_.chance(opts_.faults.phantom_delay_rate)) {
              deliver += opts_.faults.phantom_extra_delay;
              ++result_.phantom_delayed;
              MP5_TELEM_INC(t_phantom_delayed_);
            }
            PendingPhantom pending;
            pending.seq = pkt.seq;
            pending.reg = acc.reg;
            pending.index = acc.index;
            pending.pipeline = acc.pipeline;
            pending.stage = acc.stage;
            pending.lane = lane_pred;
            channel_push(deliver, pending);
            MP5_TELEM_INC(t_phantom_sent_);
          }
        } else {
          const bool ok = fifo_at(acc.pipeline, acc.stage)
                              .push_phantom(pkt.seq, acc.reg, acc.index,
                                            lane_pred, now);
          if (!ok) {
            acc.phantom_dropped = true;
            ++result_.dropped_phantom;
          } else {
            if (event_engine_) mark_active(acc.pipeline, acc.stage);
            MP5_TELEM_INC(t_phantom_sent_);
            emit(TimelineEvent::Kind::kPhantomPush, now, acc.pipeline,
                 acc.stage, pkt.seq);
          }
        }
      } else {
        acc.phantom_dropped = pkt.plan[owner].phantom_dropped;
        acc.phantom_delivered = pkt.plan[owner].phantom_delivered;
      }
      lane_pred = acc.pipeline;
    }
  }

  ++result_.offered;
  ++live_packets_;
  MP5_TELEM_INC(t_admit_);
  emit(TimelineEvent::Kind::kAdmit, now, admit_lane, 0, pkt.seq);
  ingress_[admit_lane].push_back(ref);
}

void Mp5Simulator::step_cell(PipelineId p, StageId st, Cycle now,
                             WorkerCtx* ctx) {
  // Injected transient stall: the cell has no processing slot this cycle.
  // FIFO inserts still happen (they are memory operations, not processing)
  // but nothing is served — a stateless arrival must be dropped, since
  // Invariant 2 forbids queueing it.
  const bool stalled =
      fault_sched_.has_stalls() && fault_sched_.stalled(p, st, now);
  if (stalled) {
    if (ctx != nullptr) {
      ++ctx->stalled;
    } else {
      ++result_.stalled_cycles;
      MP5_TELEM_INC(t_stall_cycles_);
    }
  }

  StageFifo& fifo = fifos_[cell(p, st)];
  const std::size_t base = cell(p, st) * k_;
  const std::uint32_t n = arrival_count_[cell(p, st)];

  PacketRef passthrough = kNullPacketRef;
  for (std::uint32_t i = 0; i < n; ++i) {
    const PacketRef ref = arrival_slots_[base + i].ref;
    const PipelineId from_lane = arrival_slots_[base + i].from_lane;
    Packet& pkt = arena_.get(ref);
    PlannedAccess* acc = pkt.pending_access();
    if (acc != nullptr && acc->stage == st) {
      // Arriving for stateful processing here; acc->pipeline == p by
      // construction of routing.
      if (opts_.ecn_threshold != 0 && fifo.size() >= opts_.ecn_threshold) {
        // §3.4 backpressure: mark packets joining a congested FIFO.
        pkt.ecn_marked = true;
      }
      if (!opts_.phantoms) {
        // no-D4 ablation: queue the data packet directly at the stage.
        const SeqNo seq = pkt.seq;
        if (!fifo.push_phantom(seq, acc->reg, acc->index, from_lane, now)) {
          drop_packet(ref, DropCause::kData, ctx);
        } else {
          // Convert the just-pushed placeholder into the data packet.
          fifo.insert_data(seq, ref);
        }
      } else if (acc->phantom_dropped) {
        emit(TimelineEvent::Kind::kDropData, now, p, st, pkt.seq);
        drop_packet(ref, DropCause::kData, ctx);
      } else if (!fifo.has_phantom(pkt.seq)) {
        if (!opts_.realistic_phantom_channel) {
          // Defensive: phantom vanished despite not being flagged dropped.
          throw Error("Mp5Simulator: phantom missing at insert");
        }
        // No placeholder for this data packet. Classify the orphan:
        const ChannelKey key{pkt.seq, p, st};
        if (lost_phantoms_[p].erase(key) != 0) {
          // The phantom was lost on the channel (injected fault): drop the
          // orphaned data packet with fault accounting instead of letting
          // it deadlock the FIFO order.
          emit(TimelineEvent::Kind::kDropFault, now, p, st, pkt.seq);
          drop_packet(ref, DropCause::kFault, ctx);
        } else if (auto chan = channel_index_.find(key);
                   chan != channel_index_.end()) {
          // The phantom is still in flight (injected extra delay let the
          // data packet overtake it — Invariant 1 broken for this packet).
          // Drop the packet; the late phantom arrives pre-cancelled and
          // costs one wasted pop.
          channel_slots_[chan->second].cancelled = true;
          emit(TimelineEvent::Kind::kDropFault, now, p, st, pkt.seq);
          drop_packet(ref, DropCause::kFault, ctx);
        } else {
          // The phantom was dropped at channel delivery (FIFO full): the
          // regular §3.4 drop path.
          emit(TimelineEvent::Kind::kDropData, now, p, st, pkt.seq);
          drop_packet(ref, DropCause::kData, ctx);
        }
      } else {
        const SeqNo seq = pkt.seq;
        if (!fifo.insert_data(seq, ref)) {
          throw Error("Mp5Simulator: insert failed with phantom present");
        }
        emit(TimelineEvent::Kind::kInsert, now, p, st, seq);
      }
    } else {
      if (passthrough != kNullPacketRef) {
        throw Error("Mp5Simulator: two pass-through packets in one cell");
      }
      passthrough = ref;
    }
  }
  arrival_count_[cell(p, st)] = 0;

  if (passthrough != kNullPacketRef) {
    const SeqNo pt_seq = arena_.get(passthrough).seq;
    if (stalled) {
      // A stalled cell cannot serve the stateless packet, and Invariant 2
      // forbids queueing it: it is lost to the fault.
      emit(TimelineEvent::Kind::kDropFault, now, p, st, pt_seq);
      drop_packet(passthrough, DropCause::kFault, ctx);
    } else {
      // §3.4 starvation guard: when a queued stateful packet has waited
      // past the threshold, drop the arriving stateless packet instead of
      // serving it with priority (it is dropped, never queued —
      // Invariant 2 holds).
      bool starved = false;
      if (opts_.starvation_threshold != 0) {
        const auto oldest = fifo.oldest_head_enqueue();
        starved = oldest.has_value() &&
                  now - *oldest > opts_.starvation_threshold;
      }
      if (starved) {
        emit(TimelineEvent::Kind::kDropStarved, now, p, st, pt_seq);
        drop_packet(passthrough, DropCause::kStarved, ctx);
      } else {
        // Invariant 2: stateless packets are processed with priority and
        // never queued.
        emit(TimelineEvent::Kind::kPassThrough, now, p, st, pt_seq);
        process_packet(passthrough, p, st, /*from_fifo=*/false, now, ctx);
        return;
      }
    }
  }
  if (stalled) return; // no processing slot: the FIFO is not served

  auto popped = fifo.pop();
  switch (popped.kind) {
    case StageFifo::PopResult::Kind::kIdle:
      return;
    case StageFifo::PopResult::Kind::kBlocked:
      if (ctx != nullptr) {
        ++ctx->blocked;
      } else {
        ++result_.blocked_cycles;
      }
      emit(TimelineEvent::Kind::kBlocked, now, p, st, kInvalidSeqNo);
      return;
    case StageFifo::PopResult::Kind::kWasted:
      if (ctx != nullptr) {
        ++ctx->wasted;
      } else {
        ++result_.wasted_cycles;
      }
      emit(TimelineEvent::Kind::kPopWasted, now, p, st, kInvalidSeqNo);
      return;
    case StageFifo::PopResult::Kind::kData:
      emit(TimelineEvent::Kind::kPopData, now, p, st,
           arena_.get(popped.ref).seq);
      process_packet(popped.ref, p, st, /*from_fifo=*/true, now, ctx);
      return;
  }
}

void Mp5Simulator::exec_stage_atoms(Packet& pkt, PipelineId p, StageId st,
                                    bool from_fifo, WorkerCtx* ctx) {
  if (st == 0) return; // AR stage has no program atoms
  const ir::Stage& stage = prog_->pvsm.stages[st - 1];

  C1Observer obs;
  obs.checker = &c1_;
  obs.seq = pkt.seq;
  obs.scratch = ctx != nullptr ? &ctx->c1 : nullptr;

  for (const auto& atom : stage.atoms) {
    bool allow_state = false;
    if (atom.stateful() && from_fifo) {
      for (const auto& e : pkt.plan) {
        if (e.stage == st && e.reg == atom.reg && !e.cancelled &&
            e.pipeline == p) {
          allow_state = true;
          break;
        }
      }
    }
    if (atom.stateful() && !allow_state) {
      // Pass-through (or foreign-pipeline) execution: run the atom's pure
      // body but suppress state accesses. Their guards are false for this
      // packet by construction, so this matches reference semantics while
      // also protecting inactive register replicas.
      for (const auto& instr : atom.body) {
        if (instr.op == ir::TacOp::kRegRead ||
            instr.op == ir::TacOp::kRegWrite) {
          continue;
        }
        ir::exec_instr(instr, pkt.headers, *state_, prog_->pvsm.registers);
      }
    } else {
      ir::exec_atom(atom, pkt.headers, *state_, prog_->pvsm.registers,
                    opts_.check_c1 ? &obs : nullptr);
    }
  }
}

void Mp5Simulator::process_packet(PacketRef ref, PipelineId p, StageId st,
                                  bool from_fifo, Cycle now, WorkerCtx* ctx) {
  Packet& pkt = arena_.get(ref);
  exec_stage_atoms(pkt, p, st, from_fifo, ctx);

  if (from_fifo) {
    for (auto& e : pkt.plan) {
      if (e.stage == st && e.pipeline == p && entry_live(e)) {
        e.done = true;
        if (ctx != nullptr) {
          ctx->completions.emplace_back(e.reg, e.index);
        } else {
          state_->note_completed(e.reg, e.index);
        }
      }
    }
  }

  resolve_conservative_guards(pkt, st, ctx);
  route_onwards(ref, p, st, now, ctx);
}

void Mp5Simulator::resolve_conservative_guards(Packet& pkt,
                                               StageId done_stage,
                                               WorkerCtx* ctx) {
  for (std::size_t i = 0; i < pkt.plan.size(); ++i) {
    auto& e = pkt.plan[i];
    if (e.guard != GuardStatus::kConservative || !entry_live(e)) continue;
    if (e.guard_known_after_stage > done_stage) continue;
    const bool truthy =
        pkt.headers[static_cast<std::size_t>(e.guard_slot)] != 0;
    const bool taken = e.guard_negate ? !truthy : truthy;
    if (taken) {
      e.guard = GuardStatus::kTaken; // resolved: access will happen
    } else {
      cancel_entry(pkt, i, ctx);
    }
  }
}

void Mp5Simulator::cancel_entry(Packet& pkt, std::size_t entry_idx,
                                WorkerCtx* ctx) {
  auto& e = pkt.plan[entry_idx];
  e.cancelled = true;
  if (ctx != nullptr) {
    ctx->completions.emplace_back(e.reg, e.index);
  } else {
    state_->note_completed(e.reg, e.index);
  }
  if (!opts_.phantoms) return;

  // Zombie the phantom once every plan entry sharing it is cancelled.
  const std::size_t owner = e.phantom_owner;
  for (const auto& other : pkt.plan) {
    if (other.phantom_owner == owner && !other.cancelled) return;
  }
  const auto& owner_acc = pkt.plan[owner];
  if (owner_acc.phantom_dropped) return;
  if (ctx != nullptr) {
    // The phantom may live in another worker's lane (channel structures
    // and foreign FIFOs are off-limits during the lane phase): stage the
    // cancellation for the serial merge.
    ctx->cancels.push_back(WorkerCtx::StagedCancel{
        pkt.seq, owner_acc.pipeline, owner_acc.stage,
        opts_.realistic_phantom_channel && !owner_acc.phantom_delivered});
    return;
  }
  if (opts_.realistic_phantom_channel && !owner_acc.phantom_delivered) {
    const ChannelKey key{pkt.seq, owner_acc.pipeline, owner_acc.stage};
    // Lost on the channel (injected fault): there is nothing to cancel,
    // just forget the pending orphan detection.
    if (lost_phantoms_[owner_acc.pipeline].erase(key) != 0) return;
    // Still on the phantom channel: mark it; it arrives as a zombie.
    auto it = channel_index_.find(key);
    if (it != channel_index_.end()) {
      channel_slots_[it->second].cancelled = true;
      return;
    }
    // Already delivered (the packet's flag is stale): fall through.
  }
  emit(TimelineEvent::Kind::kCancel, 0, owner_acc.pipeline, owner_acc.stage,
       pkt.seq);
  fifo_at(owner_acc.pipeline, owner_acc.stage).cancel(pkt.seq);
}

void Mp5Simulator::drop_packet(PacketRef ref, DropCause cause,
                               WorkerCtx* ctx) {
  if (ctx != nullptr) {
    // Dropping cancels downstream phantoms in arbitrary lanes and mutates
    // global counters: stage the whole drop for the serial merge. The
    // packet stays live in the arena until then.
    ctx->drops.push_back(WorkerCtx::StagedDrop{ref, cause});
    return;
  }
  Packet& pkt = arena_.get(ref);
  switch (cause) {
    case DropCause::kData:
      ++result_.dropped_data;
      MP5_TELEM_INC(t_drop_data_);
      break;
    case DropCause::kStarved:
      ++result_.dropped_starved;
      MP5_TELEM_INC(t_drop_starved_);
      break;
    case DropCause::kFault: {
      ++result_.dropped_fault;
      MP5_TELEM_INC(t_drop_fault_);
      if (opts_.record_egress || opts_.fault_drop_sink) {
        // Declared drop set for equivalence-modulo-drops: remember whether
        // the packet's partial state effects remain in the registers.
        bool touched = false;
        for (const auto& e : pkt.plan) {
          if (e.done) {
            touched = true;
            break;
          }
        }
        if (opts_.fault_drop_sink) opts_.fault_drop_sink(pkt.seq, touched);
        if (opts_.record_egress) {
          result_.fault_drops.push_back(
              SimResult::FaultDrop{pkt.seq, touched});
        }
      }
      break;
    }
  }
  for (std::size_t i = 0; i < pkt.plan.size(); ++i) {
    auto& e = pkt.plan[i];
    if (!entry_live(e)) continue;
    // Cancel downstream phantoms so they do not block their FIFOs forever.
    cancel_entry(pkt, i, nullptr);
  }
  --live_packets_;
  arena_.release(ref);
}

void Mp5Simulator::route_onwards(PacketRef ref, PipelineId p, StageId st,
                                 Cycle now, WorkerCtx* ctx) {
  if (st == num_stages_ - 1) {
    egress_packet(ref, now, ctx);
    return;
  }
  Packet& pkt = arena_.get(ref);
  PipelineId dest = p;
  PlannedAccess* acc = pkt.pending_access();
  if (acc != nullptr && acc->stage == st + 1) {
    dest = acc->pipeline;
    if (dest != p) {
      if (ctx != nullptr) {
        ++ctx->steers;
      } else {
        ++result_.steers;
        MP5_TELEM_INC(t_steer_);
      }
      emit(TimelineEvent::Kind::kSteer, now, dest, st + 1, pkt.seq);
    }
  }
  if (!lane_alive_[dest]) {
    // Defensive: the failure sweep drops every packet with a live plan
    // entry targeting a dead lane, so steering into one should be
    // impossible — but degrade gracefully rather than corrupting a dead
    // lane's queues if a future change breaks that guarantee.
    emit(TimelineEvent::Kind::kDropFault, now, dest, st + 1, pkt.seq);
    drop_packet(ref, DropCause::kFault, ctx);
    return;
  }
  if (ctx != nullptr) {
    // The destination cell may belong to another worker: stage the hop.
    // The merge replays routes worker-ascending == lane-ascending, the
    // same order the sequential engine fills arrival cells in.
    ctx->routed.push_back(WorkerCtx::Routed{ref, dest, static_cast<StageId>(st + 1), p});
  } else {
    push_arrival(dest, static_cast<StageId>(st + 1), ref, p);
  }
}

void Mp5Simulator::egress_packet(PacketRef ref, Cycle now, WorkerCtx* ctx) {
  if (ctx != nullptr) {
    // Egress mutates global counters, latency histograms and the per-flow
    // reordering table: replay serially at the barrier (worker-ascending ==
    // the sequential engine's lane walk order).
    ctx->egressed.push_back(ref);
    return;
  }
  Packet& pkt = arena_.get(ref);
  emit(TimelineEvent::Kind::kEgress, now, 0, num_stages_ - 1, pkt.seq);
  ++result_.egressed;
  MP5_TELEM_INC(t_egress_);
  MP5_TELEM_OBSERVE(t_egress_latency_,
                    static_cast<double>(now - pkt.arrival_cycle));
  --live_packets_;
  result_.last_egress = now;
  if (awaiting_egress_after_failure_) {
    // First successful egress since the most recent lane failure: the
    // switch is delivering packets again.
    result_.time_to_recover = now - fail_marker_;
    awaiting_egress_after_failure_ = false;
  }
  if (pkt.ecn_marked) {
    ++result_.ecn_marked;
    MP5_TELEM_INC(t_ecn_);
  }
  if (opts_.track_flow_reordering) {
    auto [it, inserted] = flow_last_egress_.try_emplace(pkt.flow, pkt.seq);
    if (!inserted) {
      if (pkt.seq < it->second) {
        ++result_.reordered_flow_packets;
      } else {
        it->second = pkt.seq;
      }
    }
  }
  if (opts_.record_egress || opts_.egress_sink) {
    EgressRecord rec;
    rec.seq = pkt.seq;
    rec.egress_cycle = now;
    rec.flow = pkt.flow;
    rec.headers = std::move(pkt.headers);
    if (opts_.egress_sink) {
      // Streaming soak: the record goes to the sink (rolling verification)
      // instead of accumulating in the result — flat RSS for any length.
      opts_.egress_sink(std::move(rec));
    } else {
      result_.egress.push_back(std::move(rec));
    }
  }
  arena_.release(ref);
}

} // namespace mp5
