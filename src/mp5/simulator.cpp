#include "mp5/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mp5 {
namespace {

/// Access observer that feeds the C1 checker, collapsing one packet's
/// read-modify-write of a state into a single logical access.
struct C1Observer final : ir::AccessObserver {
  void on_state_access(RegId reg, RegIndex index, bool /*is_write*/) override {
    if (seen && reg == last_reg && index == last_index) return;
    checker->on_access(reg, index, seq);
    last_reg = reg;
    last_index = index;
    seen = true;
  }
  C1Checker* checker = nullptr;
  SeqNo seq = 0;
  RegId last_reg = ir::kNoReg;
  RegIndex last_index = 0;
  bool seen = false;
};

bool entry_live(const PlannedAccess& e) { return !e.done && !e.cancelled; }

} // namespace

Mp5Simulator::Mp5Simulator(const Mp5Program& program, const SimOptions& options)
    : prog_(&program), opts_(options) {
  // Option validation: every inconsistent combination is rejected here, at
  // construction, instead of being silently patched or misbehaving at run
  // time.
  if (opts_.pipelines == 0) {
    throw ConfigError("SimOptions: pipelines must be > 0");
  }
  if (opts_.naive_single_pipeline &&
      opts_.sharding != ShardingPolicy::kSinglePipeline) {
    throw ConfigError(
        "SimOptions: naive_single_pipeline requires "
        "ShardingPolicy::kSinglePipeline (use baseline::naive_options)");
  }
  if (opts_.ideal_queues && opts_.sharding != ShardingPolicy::kIdealLpt) {
    throw ConfigError(
        "SimOptions: ideal_queues models the §4.3.3 upper bound and "
        "requires ShardingPolicy::kIdealLpt");
  }
  if (opts_.fifo_capacity != 0 && !opts_.ideal_queues &&
      opts_.ecn_threshold >
          opts_.fifo_capacity * static_cast<std::size_t>(opts_.pipelines)) {
    // A stage FIFO holds k lanes of fifo_capacity entries each, so its
    // occupancy can never exceed k*capacity: a larger ECN threshold can
    // never fire. (starvation_threshold is measured in cycles waited, not
    // entries, so it has no comparable capacity bound.)
    throw ConfigError(
        "SimOptions: ecn_threshold exceeds the maximum stage-FIFO "
        "occupancy (pipelines * fifo_capacity); it could never trigger");
  }
  opts_.faults.validate(opts_.pipelines);
  if (opts_.faults.has_phantom_faults() && !opts_.realistic_phantom_channel) {
    throw ConfigError(
        "SimOptions: phantom loss/delay faults need "
        "realistic_phantom_channel (instant delivery has no channel to "
        "fail)");
  }
  if (!opts_.faults.pipeline_faults.empty() &&
      opts_.sharding == ShardingPolicy::kSinglePipeline) {
    throw ConfigError(
        "SimOptions: pipeline failures need a sharding policy that can "
        "re-home state to survivors (not kSinglePipeline)");
  }

  k_ = opts_.pipelines;
  num_stages_ = prog_->num_stages;

  Rng rng(opts_.seed);
  // state_ forks first so fault-free runs see the same random stream as
  // before fault support existed.
  state_ = std::make_unique<ShardedState>(prog_->pvsm.registers,
                                          prog_->shardable, k_, opts_.sharding,
                                          rng.fork());
  fault_rng_ = rng.fork();
  fault_sched_ = FaultSchedule(opts_.faults, k_);
  lane_alive_.assign(k_, true);
  fifos_.resize(k_);
  arrivals_.resize(k_);
  for (PipelineId p = 0; p < k_; ++p) {
    arrivals_[p].resize(num_stages_);
    fifos_[p].reserve(num_stages_);
    for (StageId s = 0; s < num_stages_; ++s) {
      fifos_[p].emplace_back(k_, opts_.fifo_capacity, opts_.ideal_queues);
    }
  }
  ingress_.resize(k_);

#if MP5_TELEMETRY_COMPILED
  if (opts_.telemetry != nullptr) {
    telem_ = opts_.telemetry;
    state_->set_telemetry(*telem_);
    for (auto& per_pipe : fifos_) {
      for (auto& fifo : per_pipe) fifo.set_telemetry(*telem_);
    }
    t_admit_ = &telem_->counter("sim.admitted");
    t_egress_ = &telem_->counter("sim.egressed");
    t_steer_ = &telem_->counter("sim.steers");
    t_drop_data_ = &telem_->counter("sim.dropped_data");
    t_drop_starved_ = &telem_->counter("sim.dropped_starved");
    t_drop_fault_ = &telem_->counter("sim.dropped_fault");
    t_ecn_ = &telem_->counter("sim.ecn_marked");
    t_stall_cycles_ = &telem_->counter("fault.stalled_cycles");
    t_phantom_sent_ = &telem_->counter("phantom.sent");
    t_phantom_lost_ = &telem_->counter("phantom.lost");
    t_phantom_delayed_ = &telem_->counter("phantom.delayed");
    t_lane_fail_ = &telem_->counter("fault.lane_failures");
    t_lane_recover_ = &telem_->counter("fault.lane_recoveries");
    t_egress_latency_ = &telem_->histogram("sim.egress_latency", 1.0, 128);
  }
#endif
}

SimResult Mp5Simulator::run(const Trace& trace) {
  trace_ = &trace;
  cursor_ = 0;
  result_ = SimResult{};
  result_.offered = 0;

  Cycle now = 0;
  bool first = true;
  while (work_remaining()) {
    if (now >= opts_.max_cycles) {
      throw Error("Mp5Simulator: max_cycles exceeded (deadlock or overload?)");
    }
    // 0. Scheduled faults fire at the cycle boundary, before arrivals, so
    //    packets admitted this cycle already see the new lane set.
    if (fault_sched_.any()) {
      apply_fault_events(now);
      if (fault_sched_.has_pressure()) {
        const std::size_t cap = fault_sched_.pressure_capacity(now);
        if (cap != current_pressure_) {
          current_pressure_ = cap;
          for (auto& per_pipe : fifos_) {
            for (auto& fifo : per_pipe) fifo.set_pressure_capacity(cap);
          }
        }
      }
    }
    // 1. Arrivals for this cycle (trace is pre-sorted by (time, port)).
    while (cursor_ < trace_->size() &&
           (*trace_)[cursor_].arrival_time < static_cast<double>(now + 1)) {
      admit((*trace_)[cursor_], now);
      ++cursor_;
      if (first) {
        result_.first_arrival = now;
        first = false;
      }
      result_.last_arrival = now;
    }
    // 1b. Phantom channel: deliver phantoms whose hop count has elapsed.
    if (opts_.realistic_phantom_channel) deliver_due_phantoms(now);
    // 2. Ingress: each live pipeline admits one packet into the AR stage.
    for (PipelineId p = 0; p < k_; ++p) {
      if (!lane_alive_[p]) continue;
      if (!ingress_[p].empty()) {
        arrivals_[p][0].push_back(Arrived{std::move(ingress_[p].front()), p});
        ingress_[p].pop_front();
      }
    }
    // 3. Stage processing, last stage first so packets move one stage per
    //    cycle (outputs land in already-processed downstream cells). Dead
    //    lanes are skipped (their queues were drained at failure time).
    for (StageId st = num_stages_; st-- > 0;) {
      for (PipelineId p = 0; p < k_; ++p) {
        if (!lane_alive_[p]) continue;
        step_cell(p, st, now);
      }
    }
    // 4. Periodic dynamic state sharding (Figure 6).
    if (opts_.remap_period != 0 &&
        (now + 1) % opts_.remap_period == 0) {
      const std::size_t moves = state_->rebalance();
      result_.remap_moves += moves;
      if (moves != 0) {
        emit(TimelineEvent::Kind::kRemap, now, 0, 0, kInvalidSeqNo,
             static_cast<std::uint64_t>(moves));
      }
    }
    // 5. Cycle-end watchdog.
    if (opts_.paranoid_checks) check_invariants(now);
    ++now;
  }
  result_.cycles_run = now;
  result_.final_registers = state_->storage();
  result_.c1_violating_packets = c1_.violating_packets();
  for (const auto& per_pipe : fifos_) {
    for (const auto& fifo : per_pipe) {
      result_.max_queue_depth =
          std::max(result_.max_queue_depth, fifo.high_water());
    }
  }
  if (telem_ != nullptr) {
    telem_->gauge("sim.cycles_run").set(static_cast<double>(now));
    telem_->gauge("sim.max_queue_depth")
        .set(static_cast<double>(result_.max_queue_depth));
    telem_->gauge("sim.normalized_throughput")
        .set(result_.normalized_throughput());
  }
  std::sort(result_.egress.begin(), result_.egress.end(),
            [](const EgressRecord& a, const EgressRecord& b) {
              return a.seq < b.seq;
            });
  std::sort(result_.fault_drops.begin(), result_.fault_drops.end(),
            [](const SimResult::FaultDrop& a, const SimResult::FaultDrop& b) {
              return a.seq < b.seq;
            });
  return std::move(result_);
}

void Mp5Simulator::apply_fault_events(Cycle now) {
  const auto& events = fault_sched_.lane_events();
  while (fault_cursor_ < events.size() &&
         events[fault_cursor_].cycle <= now) {
    const auto& event = events[fault_cursor_++];
    if (event.fail) {
      fail_lane(event.pipeline, now);
    } else {
      recover_lane(event.pipeline, now);
    }
  }
}

void Mp5Simulator::fail_lane(PipelineId p, Cycle now) {
  emit(TimelineEvent::Kind::kLaneFail, now, p, 0, kInvalidSeqNo);
  ++result_.pipeline_failures;
  MP5_TELEM_INC(t_lane_fail_);
  fail_marker_ = now;
  awaiting_egress_after_failure_ = true;

  // 1. Everything physically inside the lane dies with it.
  std::vector<Packet> doomed;
  for (auto& pkt : ingress_[p]) doomed.push_back(std::move(pkt));
  ingress_[p].clear();
  for (StageId st = 0; st < num_stages_; ++st) {
    for (auto& arr : arrivals_[p][st]) doomed.push_back(std::move(arr.packet));
    arrivals_[p][st].clear();
    for (auto& pkt : fifos_[p][st].drain_all()) doomed.push_back(std::move(pkt));
  }

  // 2. Phantoms in flight toward the dead lane vanish with its channel
  //    ports (their packets are swept below: the plan entry is live).
  for (auto it = channel_.begin(); it != channel_.end();) {
    if (it->second.pipeline == p) {
      channel_index_.erase(
          ChannelKey{it->second.seq, it->second.pipeline, it->second.stage});
      it = channel_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = lost_phantoms_.begin(); it != lost_phantoms_.end();) {
    it = it->pipeline == p ? lost_phantoms_.erase(it) : std::next(it);
  }

  // 3. Sweep the survivors for packets doomed to visit the dead lane: a
  //    live plan entry targeting it can no longer be served. Dropping them
  //    now (rather than at steer time) keeps the in-flight counters exact
  //    for the remap below.
  const auto doomed_pred = [p](const Packet& pkt) {
    for (const auto& e : pkt.plan) {
      if (entry_live(e) && e.pipeline == p) return true;
    }
    return false;
  };
  for (PipelineId q = 0; q < k_; ++q) {
    if (q == p || !lane_alive_[q]) continue;
    auto& ing = ingress_[q];
    for (auto it = ing.begin(); it != ing.end();) {
      if (doomed_pred(*it)) {
        doomed.push_back(std::move(*it));
        it = ing.erase(it);
      } else {
        ++it;
      }
    }
    for (StageId st = 0; st < num_stages_; ++st) {
      auto& arr = arrivals_[q][st];
      for (auto it = arr.begin(); it != arr.end();) {
        if (doomed_pred(it->packet)) {
          doomed.push_back(std::move(it->packet));
          it = arr.erase(it);
        } else {
          ++it;
        }
      }
      for (auto& pkt : fifos_[q][st].extract_data_if(doomed_pred)) {
        doomed.push_back(std::move(pkt));
      }
    }
  }

  // 4. Account the losses. Cancelling each packet's remaining phantoms
  //    also releases its in-flight counters, clearing the §3.4 guard.
  for (auto& pkt : doomed) {
    emit(TimelineEvent::Kind::kDropFault, now, p, 0, pkt.seq);
    drop_packet(std::move(pkt), DropCause::kFault);
  }

  // 5. Atomically re-home the dead lane's active indices to survivors.
  lane_alive_[p] = false;
  result_.fault_remapped_indices += state_->fail_pipeline(p);
}

void Mp5Simulator::recover_lane(PipelineId p, Cycle now) {
  state_->recover_pipeline(p);
  lane_alive_[p] = true;
  ++result_.pipeline_recoveries;
  MP5_TELEM_INC(t_lane_recover_);
  emit(TimelineEvent::Kind::kLaneRecover, now, p, 0, kInvalidSeqNo);
}

PipelineId Mp5Simulator::spray_lane(SeqNo seq) const {
  std::uint32_t alive = 0;
  for (PipelineId p = 0; p < k_; ++p) {
    if (lane_alive_[p]) ++alive;
  }
  std::uint32_t pick = static_cast<std::uint32_t>(seq % alive);
  for (PipelineId p = 0; p < k_; ++p) {
    if (!lane_alive_[p]) continue;
    if (pick == 0) return p;
    --pick;
  }
  throw Error("Mp5Simulator::spray_lane: no live pipeline");
}

void Mp5Simulator::check_invariants(Cycle now) const {
  // Per-lane seq ordering (Invariant 1) is a property of the phantom
  // mechanism: the no-D4 ablation queues data packets in stage-arrival
  // order, and injected phantom delays legitimately reorder a lane. Every
  // other structural property must still hold.
  const bool check_order =
      opts_.phantoms && opts_.faults.phantom_delay_rate == 0.0;
  std::uint64_t in_containers = 0;
  for (PipelineId p = 0; p < k_; ++p) {
    if (!lane_alive_[p] && !ingress_[p].empty()) {
      throw InvariantError("dead-lane", now,
                           "dead lane " + std::to_string(p) +
                               " has queued ingress packets");
    }
    in_containers += ingress_[p].size();
    for (StageId st = 0; st < num_stages_; ++st) {
      const auto& fifo = fifos_[p][st];
      if (!lane_alive_[p] &&
          (fifo.size() != 0 || !arrivals_[p][st].empty())) {
        throw InvariantError("dead-lane", now,
                             "dead lane " + std::to_string(p) +
                                 " has queued entries at stage " +
                                 std::to_string(st));
      }
      in_containers += arrivals_[p][st].size();
      fifo.check_invariants(now, check_order);
      fifo.for_each_entry([&](const FifoEntry& entry) {
        if (entry.kind != FifoEntry::Kind::kData) return;
        ++in_containers;
        // Invariant 2: only packets awaiting stateful processing at this
        // very cell may be queued here.
        bool awaiting_here = false;
        for (const auto& e : entry.packet.plan) {
          if (!entry_live(e)) continue;
          awaiting_here = e.stage == st && e.pipeline == p;
          break;
        }
        if (!awaiting_here) {
          throw InvariantError(
              "invariant-2", now,
              "queued packet seq " + std::to_string(entry.packet.seq) +
                  " is not awaiting stateful processing at (" +
                  std::to_string(p) + ", " + std::to_string(st) + ")");
        }
      });
    }
  }
  if (in_containers != live_packets_) {
    throw InvariantError("live-packets", now,
                         std::to_string(live_packets_) +
                             " packets live but " +
                             std::to_string(in_containers) + " queued");
  }
  if (opts_.realistic_phantom_channel) {
    if (channel_index_.size() != channel_.size()) {
      throw InvariantError("phantom-channel", now,
                           "channel index size " +
                               std::to_string(channel_index_.size()) +
                               " != channel size " +
                               std::to_string(channel_.size()));
    }
    for (const auto& [key, it] : channel_index_) {
      const PendingPhantom& rec = it->second;
      if (rec.seq != key.seq || rec.pipeline != key.pipeline ||
          rec.stage != key.stage) {
        throw InvariantError("phantom-channel", now,
                             "channel index entry for seq " +
                                 std::to_string(key.seq) +
                                 " addresses the wrong record");
      }
    }
  }
}

void Mp5Simulator::deliver_due_phantoms(Cycle now) {
  // Collect everything due, then push in global arrival (seq) order so
  // every FIFO receives its phantoms in generation order (Invariant 1).
  std::vector<PendingPhantom> due;
  while (!channel_.empty() && channel_.begin()->first <= now) {
    channel_index_.erase(ChannelKey{channel_.begin()->second.seq,
                                    channel_.begin()->second.pipeline,
                                    channel_.begin()->second.stage});
    due.push_back(channel_.begin()->second);
    channel_.erase(channel_.begin());
  }
  std::sort(due.begin(), due.end(),
            [](const PendingPhantom& a, const PendingPhantom& b) {
              return a.seq < b.seq;
            });
  for (const auto& pending : due) {
    auto& fifo = fifos_[pending.pipeline][pending.stage];
    if (!fifo.push_phantom(pending.seq, pending.reg, pending.index,
                           pending.lane, now)) {
      ++result_.dropped_phantom;
      continue; // the data packet will miss its placeholder and be dropped
    }
    emit(TimelineEvent::Kind::kPhantomPush, now, pending.pipeline,
         pending.stage, pending.seq);
    if (pending.cancelled) {
      // Cancelled while in flight: arrives as a zombie (one wasted pop).
      fifo.cancel(pending.seq);
      emit(TimelineEvent::Kind::kCancel, now, pending.pipeline,
           pending.stage, pending.seq);
    }
  }
}

bool Mp5Simulator::work_remaining() const {
  return live_packets_ > 0 || (trace_ != nullptr && cursor_ < trace_->size());
}

void Mp5Simulator::admit(const TraceItem& item, Cycle now) {
  Packet pkt;
  pkt.seq = next_seq_++;
  pkt.arrival_cycle = now;
  pkt.port = item.port;
  pkt.size_bytes = item.size_bytes;
  pkt.flow = item.flow;
  pkt.headers.assign(prog_->pvsm.num_slots(), 0);
  for (std::size_t i = 0; i < item.fields.size() && i < pkt.headers.size();
       ++i) {
    pkt.headers[i] = item.fields[i];
  }

  // Address resolution: execute the hoisted stateless slices. They are
  // pure, so no register file is touched; pass the real one for interface
  // uniformity.
  for (const auto& instr : prog_->resolver) {
    ir::exec_instr(instr, pkt.headers, *state_, prog_->pvsm.registers);
  }

  // Build the access plan. The ingress spray covers live lanes only, so a
  // failed pipeline degrades throughput to ~(k-1)/k instead of blackholing
  // 1/k of the traffic.
  const PipelineId admit_lane =
      opts_.naive_single_pipeline ? 0 : spray_lane(pkt.seq);
  for (const auto& desc : prog_->accesses) {
    if (desc.guard != ir::kNoSlot && desc.guard_resolvable) {
      const bool truthy =
          pkt.headers[static_cast<std::size_t>(desc.guard)] != 0;
      if (desc.guard_negate ? truthy : !truthy) continue; // branch not taken
    }
    PlannedAccess acc;
    acc.reg = desc.reg;
    acc.stage = desc.stage;
    acc.index = desc.index_resolvable
                    ? ir::resolve_index(desc.index, pkt.headers,
                                        prog_->pvsm.registers[desc.reg].size)
                    : kUnresolvedIndex;
    acc.pipeline = state_->pipeline_of(desc.reg, acc.index);
    if (desc.guard != ir::kNoSlot && !desc.guard_resolvable) {
      acc.guard = GuardStatus::kConservative;
      acc.guard_known_after_stage = desc.guard_known_after_stage;
      acc.guard_slot = desc.guard;
      acc.guard_negate = desc.guard_negate;
    }
    state_->note_resolved(desc.reg, acc.index);
    pkt.plan.push_back(acc);
  }

  // Phantom generation (D4): one phantom per (stage, pipeline) group — a
  // packet that must access two co-located arrays in one stage holds a
  // single place in that stage's FIFO.
  if (opts_.phantoms) {
    PipelineId lane_pred = admit_lane;
    for (std::size_t i = 0; i < pkt.plan.size(); ++i) {
      auto& acc = pkt.plan[i];
      std::size_t owner = i;
      for (std::size_t j = 0; j < i; ++j) {
        if (pkt.plan[j].stage == acc.stage &&
            pkt.plan[j].pipeline == acc.pipeline) {
          owner = pkt.plan[j].phantom_owner;
          break;
        }
      }
      acc.phantom_owner = owner;
      acc.phantom_lane = lane_pred;
      if (owner == i) {
        if (opts_.realistic_phantom_channel) {
          // The phantom hops one stage per cycle on its own channel: it
          // reaches stage s after s cycles, always ahead of the data
          // packet (which needs ingress + s processing cycles).
          acc.phantom_delivered = false;
          const ChannelKey key{pkt.seq, acc.pipeline, acc.stage};
          if (opts_.faults.phantom_loss_rate > 0.0 &&
              fault_rng_.chance(opts_.faults.phantom_loss_rate)) {
            // Injected channel loss: the phantom never arrives. The data
            // packet finds no placeholder at its stateful stage and is
            // dropped there with fault accounting (instead of
            // deadlocking behind a hole in the order).
            lost_phantoms_.insert(key);
            ++result_.phantom_lost;
            MP5_TELEM_INC(t_phantom_lost_);
          } else {
            Cycle deliver = now + acc.stage;
            if (opts_.faults.phantom_delay_rate > 0.0 &&
                fault_rng_.chance(opts_.faults.phantom_delay_rate)) {
              deliver += opts_.faults.phantom_extra_delay;
              ++result_.phantom_delayed;
              MP5_TELEM_INC(t_phantom_delayed_);
            }
            PendingPhantom pending;
            pending.seq = pkt.seq;
            pending.reg = acc.reg;
            pending.index = acc.index;
            pending.pipeline = acc.pipeline;
            pending.stage = acc.stage;
            pending.lane = lane_pred;
            auto it = channel_.emplace(deliver, pending);
            channel_index_[key] = it;
            MP5_TELEM_INC(t_phantom_sent_);
          }
        } else {
          const bool ok = fifos_[acc.pipeline][acc.stage].push_phantom(
              pkt.seq, acc.reg, acc.index, lane_pred, now);
          if (!ok) {
            acc.phantom_dropped = true;
            ++result_.dropped_phantom;
          } else {
            MP5_TELEM_INC(t_phantom_sent_);
            emit(TimelineEvent::Kind::kPhantomPush, now, acc.pipeline,
                 acc.stage, pkt.seq);
          }
        }
      } else {
        acc.phantom_dropped = pkt.plan[owner].phantom_dropped;
        acc.phantom_delivered = pkt.plan[owner].phantom_delivered;
      }
      lane_pred = acc.pipeline;
    }
  }

  ++result_.offered;
  ++live_packets_;
  MP5_TELEM_INC(t_admit_);
  emit(TimelineEvent::Kind::kAdmit, now, admit_lane, 0, pkt.seq);
  ingress_[admit_lane].push_back(std::move(pkt));
}

void Mp5Simulator::step_cell(PipelineId p, StageId st, Cycle now) {
  // Injected transient stall: the cell has no processing slot this cycle.
  // FIFO inserts still happen (they are memory operations, not processing)
  // but nothing is served — a stateless arrival must be dropped, since
  // Invariant 2 forbids queueing it.
  const bool stalled =
      fault_sched_.has_stalls() && fault_sched_.stalled(p, st, now);
  if (stalled) {
    ++result_.stalled_cycles;
    MP5_TELEM_INC(t_stall_cycles_);
  }

  auto incoming = std::move(arrivals_[p][st]);
  arrivals_[p][st].clear();

  std::optional<Packet> passthrough;
  for (auto& arr : incoming) {
    Packet& pkt = arr.packet;
    PlannedAccess* acc = pkt.pending_access();
    if (acc != nullptr && acc->stage == st) {
      // Arriving for stateful processing here; acc->pipeline == p by
      // construction of routing.
      if (opts_.ecn_threshold != 0 &&
          fifos_[p][st].size() >= opts_.ecn_threshold) {
        // §3.4 backpressure: mark packets joining a congested FIFO.
        pkt.ecn_marked = true;
      }
      if (!opts_.phantoms) {
        // no-D4 ablation: queue the data packet directly at the stage.
        FifoEntry entry;
        entry.kind = FifoEntry::Kind::kData;
        entry.seq = pkt.seq;
        entry.reg = acc->reg;
        entry.index = acc->index;
        const SeqNo seq = pkt.seq;
        entry.packet = std::move(pkt);
        if (!fifos_[p][st].push_phantom(seq, entry.reg, entry.index,
                                        arr.from_lane, now)) {
          drop_packet(std::move(entry.packet), DropCause::kData);
        } else {
          // Convert the just-pushed placeholder into the data packet.
          fifos_[p][st].insert_data(std::move(entry.packet));
        }
      } else if (acc->phantom_dropped) {
        emit(TimelineEvent::Kind::kDropData, now, p, st, pkt.seq);
        drop_packet(std::move(pkt), DropCause::kData);
      } else if (!fifos_[p][st].has_phantom(pkt.seq)) {
        if (!opts_.realistic_phantom_channel) {
          // Defensive: phantom vanished despite not being flagged dropped.
          throw Error("Mp5Simulator: phantom missing at insert");
        }
        // No placeholder for this data packet. Classify the orphan:
        const ChannelKey key{pkt.seq, p, st};
        if (lost_phantoms_.erase(key) != 0) {
          // The phantom was lost on the channel (injected fault): drop the
          // orphaned data packet with fault accounting instead of letting
          // it deadlock the FIFO order.
          emit(TimelineEvent::Kind::kDropFault, now, p, st, pkt.seq);
          drop_packet(std::move(pkt), DropCause::kFault);
        } else if (auto chan = channel_index_.find(key);
                   chan != channel_index_.end()) {
          // The phantom is still in flight (injected extra delay let the
          // data packet overtake it — Invariant 1 broken for this packet).
          // Drop the packet; the late phantom arrives pre-cancelled and
          // costs one wasted pop.
          chan->second->second.cancelled = true;
          emit(TimelineEvent::Kind::kDropFault, now, p, st, pkt.seq);
          drop_packet(std::move(pkt), DropCause::kFault);
        } else {
          // The phantom was dropped at channel delivery (FIFO full): the
          // regular §3.4 drop path.
          emit(TimelineEvent::Kind::kDropData, now, p, st, pkt.seq);
          drop_packet(std::move(pkt), DropCause::kData);
        }
      } else {
        const SeqNo seq = pkt.seq;
        if (!fifos_[p][st].insert_data(std::move(pkt))) {
          throw Error("Mp5Simulator: insert failed with phantom present");
        }
        emit(TimelineEvent::Kind::kInsert, now, p, st, seq);
      }
    } else {
      if (passthrough.has_value()) {
        throw Error("Mp5Simulator: two pass-through packets in one cell");
      }
      passthrough = std::move(pkt);
    }
  }

  if (passthrough.has_value()) {
    if (stalled) {
      // A stalled cell cannot serve the stateless packet, and Invariant 2
      // forbids queueing it: it is lost to the fault.
      emit(TimelineEvent::Kind::kDropFault, now, p, st, passthrough->seq);
      drop_packet(std::move(*passthrough), DropCause::kFault);
    } else {
      // §3.4 starvation guard: when a queued stateful packet has waited
      // past the threshold, drop the arriving stateless packet instead of
      // serving it with priority (it is dropped, never queued —
      // Invariant 2 holds).
      bool starved = false;
      if (opts_.starvation_threshold != 0) {
        const auto oldest = fifos_[p][st].oldest_head_enqueue();
        starved = oldest.has_value() &&
                  now - *oldest > opts_.starvation_threshold;
      }
      if (starved) {
        emit(TimelineEvent::Kind::kDropStarved, now, p, st, passthrough->seq);
        drop_packet(std::move(*passthrough), DropCause::kStarved);
      } else {
        // Invariant 2: stateless packets are processed with priority and
        // never queued.
        emit(TimelineEvent::Kind::kPassThrough, now, p, st, passthrough->seq);
        process_packet(std::move(*passthrough), p, st, /*from_fifo=*/false,
                       now);
        return;
      }
    }
  }
  if (stalled) return; // no processing slot: the FIFO is not served

  auto popped = fifos_[p][st].pop();
  switch (popped.kind) {
    case StageFifo::PopResult::Kind::kIdle:
      return;
    case StageFifo::PopResult::Kind::kBlocked:
      ++result_.blocked_cycles;
      emit(TimelineEvent::Kind::kBlocked, now, p, st, kInvalidSeqNo);
      return;
    case StageFifo::PopResult::Kind::kWasted:
      ++result_.wasted_cycles;
      emit(TimelineEvent::Kind::kPopWasted, now, p, st, kInvalidSeqNo);
      return;
    case StageFifo::PopResult::Kind::kData:
      emit(TimelineEvent::Kind::kPopData, now, p, st, popped.packet.seq);
      process_packet(std::move(popped.packet), p, st, /*from_fifo=*/true, now);
      return;
  }
}

void Mp5Simulator::exec_stage_atoms(Packet& pkt, PipelineId p, StageId st,
                                    bool from_fifo) {
  if (st == 0) return; // AR stage has no program atoms
  const ir::Stage& stage = prog_->pvsm.stages[st - 1];

  C1Observer obs;
  obs.checker = &c1_;
  obs.seq = pkt.seq;

  for (const auto& atom : stage.atoms) {
    bool allow_state = false;
    if (atom.stateful() && from_fifo) {
      for (const auto& e : pkt.plan) {
        if (e.stage == st && e.reg == atom.reg && !e.cancelled &&
            e.pipeline == p) {
          allow_state = true;
          break;
        }
      }
    }
    if (atom.stateful() && !allow_state) {
      // Pass-through (or foreign-pipeline) execution: run the atom's pure
      // body but suppress state accesses. Their guards are false for this
      // packet by construction, so this matches reference semantics while
      // also protecting inactive register replicas.
      for (const auto& instr : atom.body) {
        if (instr.op == ir::TacOp::kRegRead ||
            instr.op == ir::TacOp::kRegWrite) {
          continue;
        }
        ir::exec_instr(instr, pkt.headers, *state_, prog_->pvsm.registers);
      }
    } else {
      ir::exec_atom(atom, pkt.headers, *state_, prog_->pvsm.registers,
                    opts_.check_c1 ? &obs : nullptr);
    }
  }
}

void Mp5Simulator::process_packet(Packet pkt, PipelineId p, StageId st,
                                  bool from_fifo, Cycle now) {
  exec_stage_atoms(pkt, p, st, from_fifo);

  if (from_fifo) {
    for (auto& e : pkt.plan) {
      if (e.stage == st && e.pipeline == p && entry_live(e)) {
        e.done = true;
        state_->note_completed(e.reg, e.index);
      }
    }
  }

  resolve_conservative_guards(pkt, st);
  route_onwards(std::move(pkt), p, st, now);
}

void Mp5Simulator::resolve_conservative_guards(Packet& pkt,
                                               StageId done_stage) {
  for (std::size_t i = 0; i < pkt.plan.size(); ++i) {
    auto& e = pkt.plan[i];
    if (e.guard != GuardStatus::kConservative || !entry_live(e)) continue;
    if (e.guard_known_after_stage > done_stage) continue;
    const bool truthy =
        pkt.headers[static_cast<std::size_t>(e.guard_slot)] != 0;
    const bool taken = e.guard_negate ? !truthy : truthy;
    if (taken) {
      e.guard = GuardStatus::kTaken; // resolved: access will happen
    } else {
      cancel_entry(pkt, i);
    }
  }
}

void Mp5Simulator::cancel_entry(Packet& pkt, std::size_t entry_idx) {
  auto& e = pkt.plan[entry_idx];
  e.cancelled = true;
  state_->note_completed(e.reg, e.index);
  if (!opts_.phantoms) return;

  // Zombie the phantom once every plan entry sharing it is cancelled.
  const std::size_t owner = e.phantom_owner;
  for (const auto& other : pkt.plan) {
    if (other.phantom_owner == owner && !other.cancelled) return;
  }
  const auto& owner_acc = pkt.plan[owner];
  if (owner_acc.phantom_dropped) return;
  if (opts_.realistic_phantom_channel && !owner_acc.phantom_delivered) {
    const ChannelKey key{pkt.seq, owner_acc.pipeline, owner_acc.stage};
    // Lost on the channel (injected fault): there is nothing to cancel,
    // just forget the pending orphan detection.
    if (lost_phantoms_.erase(key) != 0) return;
    // Still on the phantom channel: mark it; it arrives as a zombie.
    auto it = channel_index_.find(key);
    if (it != channel_index_.end()) {
      it->second->second.cancelled = true;
      return;
    }
    // Already delivered (the packet's flag is stale): fall through.
  }
  emit(TimelineEvent::Kind::kCancel, 0, owner_acc.pipeline, owner_acc.stage,
       pkt.seq);
  fifos_[owner_acc.pipeline][owner_acc.stage].cancel(pkt.seq);
}

void Mp5Simulator::drop_packet(Packet&& pkt, DropCause cause) {
  switch (cause) {
    case DropCause::kData:
      ++result_.dropped_data;
      MP5_TELEM_INC(t_drop_data_);
      break;
    case DropCause::kStarved:
      ++result_.dropped_starved;
      MP5_TELEM_INC(t_drop_starved_);
      break;
    case DropCause::kFault: {
      ++result_.dropped_fault;
      MP5_TELEM_INC(t_drop_fault_);
      if (opts_.record_egress) {
        // Declared drop set for equivalence-modulo-drops: remember whether
        // the packet's partial state effects remain in the registers.
        bool touched = false;
        for (const auto& e : pkt.plan) {
          if (e.done) {
            touched = true;
            break;
          }
        }
        result_.fault_drops.push_back(SimResult::FaultDrop{pkt.seq, touched});
      }
      break;
    }
  }
  for (std::size_t i = 0; i < pkt.plan.size(); ++i) {
    auto& e = pkt.plan[i];
    if (!entry_live(e)) continue;
    // Cancel downstream phantoms so they do not block their FIFOs forever.
    cancel_entry(pkt, i);
  }
  --live_packets_;
}

void Mp5Simulator::route_onwards(Packet&& pkt, PipelineId p, StageId st,
                                 Cycle now) {
  if (st == num_stages_ - 1) {
    egress_packet(std::move(pkt), now);
    return;
  }
  PipelineId dest = p;
  PlannedAccess* acc = pkt.pending_access();
  if (acc != nullptr && acc->stage == st + 1) {
    dest = acc->pipeline;
    if (dest != p) {
      ++result_.steers;
      MP5_TELEM_INC(t_steer_);
      emit(TimelineEvent::Kind::kSteer, now, dest, st + 1, pkt.seq);
    }
  }
  if (!lane_alive_[dest]) {
    // Defensive: the failure sweep drops every packet with a live plan
    // entry targeting a dead lane, so steering into one should be
    // impossible — but degrade gracefully rather than corrupting a dead
    // lane's queues if a future change breaks that guarantee.
    emit(TimelineEvent::Kind::kDropFault, now, dest, st + 1, pkt.seq);
    drop_packet(std::move(pkt), DropCause::kFault);
    return;
  }
  arrivals_[dest][st + 1].push_back(Arrived{std::move(pkt), p});
}

void Mp5Simulator::egress_packet(Packet&& pkt, Cycle now) {
  emit(TimelineEvent::Kind::kEgress, now, 0, num_stages_ - 1, pkt.seq);
  ++result_.egressed;
  MP5_TELEM_INC(t_egress_);
  MP5_TELEM_OBSERVE(t_egress_latency_,
                    static_cast<double>(now - pkt.arrival_cycle));
  --live_packets_;
  result_.last_egress = now;
  if (awaiting_egress_after_failure_) {
    // First successful egress since the most recent lane failure: the
    // switch is delivering packets again.
    result_.time_to_recover = now - fail_marker_;
    awaiting_egress_after_failure_ = false;
  }
  if (pkt.ecn_marked) {
    ++result_.ecn_marked;
    MP5_TELEM_INC(t_ecn_);
  }
  if (opts_.track_flow_reordering) {
    auto [it, inserted] = flow_last_egress_.try_emplace(pkt.flow, pkt.seq);
    if (!inserted) {
      if (pkt.seq < it->second) {
        ++result_.reordered_flow_packets;
      } else {
        it->second = pkt.seq;
      }
    }
  }
  if (opts_.record_egress) {
    EgressRecord rec;
    rec.seq = pkt.seq;
    rec.egress_cycle = now;
    rec.flow = pkt.flow;
    rec.headers = std::move(pkt.headers);
    result_.egress.push_back(std::move(rec));
  }
}

} // namespace mp5
