#include "mp5/faults.hpp"

#include <algorithm>
#include <map>
#include <string>

#include "common/error.hpp"

namespace mp5 {

bool FaultPlan::empty() const {
  return pipeline_faults.empty() && stalls.empty() && fifo_pressure.empty() &&
         !has_phantom_faults();
}

void FaultPlan::validate(std::uint32_t pipelines) const {
  // Per-lane failure intervals, to reject overlaps below.
  std::map<PipelineId, std::vector<std::pair<Cycle, Cycle>>> windows;
  for (const auto& fault : pipeline_faults) {
    if (fault.pipeline >= pipelines) {
      throw ConfigError("fault plan: pipeline " +
                        std::to_string(fault.pipeline) + " out of range (k=" +
                        std::to_string(pipelines) + ")");
    }
    if (fault.recover_at != kNeverRecovers &&
        fault.recover_at <= fault.fail_at) {
      throw ConfigError("fault plan: recovery cycle must be after the "
                        "failure cycle");
    }
    windows[fault.pipeline].emplace_back(fault.fail_at, fault.recover_at);
  }
  for (auto& [pipeline, spans] : windows) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i - 1].second == kNeverRecovers ||
          spans[i].first < spans[i - 1].second) {
        throw ConfigError("fault plan: overlapping failure windows for "
                          "pipeline " + std::to_string(pipeline));
      }
    }
  }
  if (!pipeline_faults.empty() && pipelines < 2) {
    throw ConfigError("fault plan: pipeline failure needs k >= 2 (no "
                      "survivor to remap state to)");
  }
  for (const auto& stall : stalls) {
    if (stall.pipeline >= pipelines) {
      throw ConfigError("fault plan: stall pipeline out of range");
    }
    if (stall.until <= stall.from) {
      throw ConfigError("fault plan: stall window must be non-empty");
    }
  }
  for (const auto& pressure : fifo_pressure) {
    if (pressure.until <= pressure.from) {
      throw ConfigError("fault plan: pressure window must be non-empty");
    }
    if (pressure.capacity == 0) {
      throw ConfigError("fault plan: pressure capacity must be >= 1 (0 "
                        "would reject every phantom forever)");
    }
  }
  if (phantom_loss_rate < 0.0 || phantom_loss_rate > 1.0 ||
      phantom_delay_rate < 0.0 || phantom_delay_rate > 1.0) {
    throw ConfigError("fault plan: phantom loss/delay rates must be "
                      "probabilities in [0, 1]");
  }
  if (phantom_delay_rate > 0.0 && phantom_extra_delay == 0) {
    throw ConfigError("fault plan: phantom_delay_rate needs a nonzero "
                      "phantom_extra_delay");
  }
}

FaultSchedule::FaultSchedule(const FaultPlan& plan, std::uint32_t pipelines)
    : stalls_(plan.stalls), pressure_(plan.fifo_pressure) {
  plan.validate(pipelines);
  for (const auto& fault : plan.pipeline_faults) {
    lane_events_.push_back(LaneEvent{fault.fail_at, fault.pipeline, true});
    if (fault.recover_at != kNeverRecovers) {
      lane_events_.push_back(
          LaneEvent{fault.recover_at, fault.pipeline, false});
    }
  }
  std::sort(lane_events_.begin(), lane_events_.end(),
            [](const LaneEvent& a, const LaneEvent& b) {
              if (a.cycle != b.cycle) return a.cycle < b.cycle;
              if (a.fail != b.fail) return a.fail; // fail before recover
              return a.pipeline < b.pipeline;
            });
  any_ = !plan.empty();
}

bool FaultSchedule::stalled(PipelineId pipeline, StageId stage,
                            Cycle now) const {
  for (const auto& stall : stalls_) {
    if (stall.pipeline == pipeline && stall.stage == stage &&
        now >= stall.from && now < stall.until) {
      return true;
    }
  }
  return false;
}

std::size_t FaultSchedule::pressure_capacity(Cycle now) const {
  std::size_t clamp = 0;
  for (const auto& pressure : pressure_) {
    if (now >= pressure.from && now < pressure.until &&
        (clamp == 0 || pressure.capacity < clamp)) {
      clamp = pressure.capacity;
    }
  }
  return clamp;
}

} // namespace mp5
