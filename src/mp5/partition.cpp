#include "mp5/partition.hpp"

#include <numeric>

#include "common/error.hpp"

namespace mp5 {

PartitionedSwitch::PartitionedSwitch(std::vector<PartitionSpec> partitions,
                                     std::uint32_t total_pipelines)
    : partitions_(std::move(partitions)) {
  if (partitions_.empty()) {
    throw ConfigError("PartitionedSwitch: at least one partition required");
  }
  std::uint32_t used = 0;
  for (const auto& part : partitions_) {
    if (part.program == nullptr) {
      throw ConfigError("PartitionedSwitch: partition '" + part.name +
                        "' has no program");
    }
    if (part.pipelines == 0) {
      throw ConfigError("PartitionedSwitch: partition '" + part.name +
                        "' has no pipelines");
    }
    used += part.pipelines;
  }
  if (used != total_pipelines) {
    throw ConfigError(
        "PartitionedSwitch: partitions use " + std::to_string(used) +
        " pipelines, switch has " + std::to_string(total_pipelines));
  }
}

std::vector<PartitionResult> PartitionedSwitch::run(
    const Trace& trace, const PartitionClassifier& classify) {
  if (!classify) throw ConfigError("PartitionedSwitch: classifier required");
  std::vector<Trace> sub(partitions_.size());
  for (const auto& item : trace) {
    const std::size_t idx = classify(item);
    if (idx >= partitions_.size()) {
      throw ConfigError("PartitionedSwitch: classifier returned partition " +
                        std::to_string(idx) + " of " +
                        std::to_string(partitions_.size()));
    }
    sub[idx].push_back(item);
  }
  std::vector<PartitionResult> results;
  results.reserve(partitions_.size());
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    SimOptions opts = partitions_[i].options;
    opts.pipelines = partitions_[i].pipelines;
    Mp5Simulator sim(*partitions_[i].program, opts);
    results.push_back(PartitionResult{partitions_[i].name, sim.run(sub[i])});
  }
  return results;
}

double PartitionedSwitch::aggregate_throughput(
    const std::vector<PartitionResult>& results) {
  double offered_rate = 0.0, delivered_rate = 0.0;
  for (const auto& part : results) {
    const auto& r = part.result;
    if (r.offered == 0) continue;
    offered_rate += r.input_rate();
    delivered_rate += r.input_rate() * r.normalized_throughput();
  }
  return offered_rate == 0.0 ? 0.0 : delivered_rate / offered_rate;
}

} // namespace mp5
