// Deterministic fault injection for the MP5 simulator.
//
// Production switches lose lanes, drop phantoms, and overflow FIFOs. A
// FaultPlan schedules seeded faults against one run:
//   * whole-pipeline failure at a given cycle, with optional recovery —
//     the lane's in-flight packets are lost and its active shard indices
//     are atomically re-homed to the surviving pipelines. Because D1 makes
//     every pipeline identically programmed, any survivor can serve any
//     index, so the failure is masked at ~(k-1)/k throughput instead of
//     taking the switch down;
//   * transient stage-cell stalls (a cell processes nothing for a window);
//   * phantom-channel loss and extra delay (only meaningful with
//     SimOptions::realistic_phantom_channel — the instant-delivery model
//     has no channel to fail);
//   * forced FIFO-capacity pressure windows (every stage FIFO behaves as
//     if its capacity were clamped).
//
// The plan is pure configuration: the same plan + seed + trace always
// reproduces the same fault sequence. Unavoidable packet losses are
// declared in SimResult::dropped_fault (with per-packet records when
// egress recording is on), so functional equivalence can still be checked
// modulo the declared drop set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mp5 {

inline constexpr Cycle kNeverRecovers = ~Cycle{0};

/// Whole-pipeline failure: the lane stops at `fail_at` (packets inside it
/// are lost) and, unless `recover_at` == kNeverRecovers, rejoins empty at
/// `recover_at`.
struct PipelineFault {
  PipelineId pipeline = 0;
  Cycle fail_at = 0;
  Cycle recover_at = kNeverRecovers;
};

/// Transient stall of one (pipeline, stage) cell during [from, until):
/// the cell processes nothing. Stateful arrivals still join the stage FIFO
/// (an insert is a memory operation, not a processing slot); stateless
/// pass-through arrivals are dropped — they may never be queued
/// (Invariant 2), and a stalled cell cannot serve them.
struct StageStall {
  PipelineId pipeline = 0;
  StageId stage = 0;
  Cycle from = 0;
  Cycle until = 0;
};

/// Forced FIFO pressure during [from, until): every stage FIFO lane
/// behaves as if its per-lane capacity were at most `capacity`, forcing
/// the §3.4 drop paths even in the unbounded configuration.
struct FifoPressure {
  Cycle from = 0;
  Cycle until = 0;
  std::size_t capacity = 1;
};

struct FaultPlan {
  std::vector<PipelineFault> pipeline_faults;
  std::vector<StageStall> stalls;
  std::vector<FifoPressure> fifo_pressure;

  /// Per-phantom probability of being lost on the phantom channel. The
  /// orphaned data packet is detected at its stateful stage (no
  /// placeholder in the FIFO) and dropped with `dropped_fault` accounting
  /// instead of deadlocking.
  double phantom_loss_rate = 0.0;

  /// Per-phantom probability of an extra `phantom_extra_delay` cycles on
  /// the channel. A delayed phantom can break Invariant 1 (arrive after
  /// its data packet); the data packet is then dropped as a fault and the
  /// late phantom arrives pre-cancelled, costing one wasted pop.
  double phantom_delay_rate = 0.0;
  Cycle phantom_extra_delay = 0;

  bool empty() const;
  bool has_phantom_faults() const {
    return phantom_loss_rate > 0.0 || phantom_delay_rate > 0.0;
  }

  /// Throws ConfigError when the plan is internally inconsistent or does
  /// not fit a k-pipeline simulator.
  void validate(std::uint32_t pipelines) const;
};

/// Runtime view of a FaultPlan: the cycle-indexed queries the simulator
/// makes. Lane fail/recover events are pre-sorted; stall and pressure
/// windows are scanned (plans hold a handful of entries).
class FaultSchedule {
public:
  FaultSchedule() = default;
  FaultSchedule(const FaultPlan& plan, std::uint32_t pipelines);

  struct LaneEvent {
    Cycle cycle = 0;
    PipelineId pipeline = 0;
    bool fail = true; // false: recovery
  };

  /// All lane events, sorted by (cycle, fail-before-recover, pipeline).
  const std::vector<LaneEvent>& lane_events() const { return lane_events_; }

  bool stalled(PipelineId pipeline, StageId stage, Cycle now) const;

  /// Effective per-lane FIFO capacity clamp this cycle; 0 = no clamp.
  std::size_t pressure_capacity(Cycle now) const;

  bool any() const { return any_; }
  bool has_stalls() const { return !stalls_.empty(); }
  bool has_pressure() const { return !pressure_.empty(); }

  /// The raw stall windows: the event engine accounts stalled-but-empty
  /// cells arithmetically instead of visiting them, and clamps its cycle
  /// skips so no stall-covered cycle is jumped over.
  const std::vector<StageStall>& stalls() const { return stalls_; }

private:
  std::vector<LaneEvent> lane_events_;
  std::vector<StageStall> stalls_;
  std::vector<FifoPressure> pressure_;
  bool any_ = false;
};

} // namespace mp5
