#include "mp5/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "mp5/simulator.hpp"

namespace mp5 {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string frame_checkpoint(std::uint64_t fingerprint, Cycle cycle,
                             std::string payload) {
  ByteWriter w;
  w.bytes(kCheckpointMagic.data(), kCheckpointMagic.size());
  w.u32(kCheckpointVersion);
  w.u64(fingerprint);
  w.u64(cycle);
  w.u64(payload.size());
  w.bytes(payload.data(), payload.size());
  w.u64(fnv1a(w.buffer()));
  return w.take();
}

CheckpointInfo parse_checkpoint(std::string_view blob) {
  const std::size_t header =
      kCheckpointMagic.size() + 4 + 8 + 8 + 8; // magic, ver, fp, cycle, len
  if (blob.size() < kCheckpointMagic.size() ||
      blob.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    throw Error("not an mp5-checkpoint v1 file (bad magic)");
  }
  if (blob.size() < header + 8) {
    throw Error("checkpoint truncated (incomplete header)");
  }
  // The trailing checksum covers everything before it; verify first so a
  // corrupted length field cannot send the payload reader astray.
  const std::uint64_t stored_sum =
      ByteReader(blob.substr(blob.size() - 8)).u64();
  if (fnv1a(blob.substr(0, blob.size() - 8)) != stored_sum) {
    throw Error("checkpoint corrupted (checksum mismatch)");
  }
  ByteReader r(blob.substr(kCheckpointMagic.size()));
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    throw Error("unsupported checkpoint version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kCheckpointVersion) + ")");
  }
  CheckpointInfo info;
  info.fingerprint = r.u64();
  info.cycle = r.u64();
  const std::uint64_t payload_len = r.u64();
  if (payload_len != blob.size() - header - 8) {
    throw Error("checkpoint corrupted (payload length mismatch)");
  }
  info.payload = blob.substr(header, static_cast<std::size_t>(payload_len));
  return info;
}

std::size_t framed_size(std::string_view blob) {
  const std::size_t header = kCheckpointMagic.size() + 4 + 8 + 8 + 8;
  if (blob.size() < header) {
    throw Error("checkpoint truncated (incomplete header)");
  }
  const std::uint64_t payload_len =
      ByteReader(blob.substr(header - 8)).u64();
  if (payload_len > blob.size() - header ||
      blob.size() - header - payload_len < 8) {
    throw Error("checkpoint truncated (frame exceeds file)");
  }
  return header + static_cast<std::size_t>(payload_len) + 8;
}

void write_checkpoint_file(const std::string& path, const std::string& blob) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw Error("cannot open checkpoint file for writing: " + tmp);
  }
  const std::size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != blob.size() || !flushed) {
    std::remove(tmp.c_str());
    throw Error("short write to checkpoint file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("cannot rename checkpoint into place: " + path);
  }
}

std::string read_checkpoint_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error("cannot open checkpoint file: " + path);
  }
  std::string blob;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) != 0) {
    blob.append(buf, n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw Error("error reading checkpoint file: " + path);
  return blob;
}

// ---------------------------------------------------------------------------
// Config fingerprint
// ---------------------------------------------------------------------------

namespace {

/// Incremental FNV-1a over fixed-width little-endian scalars.
struct Fp {
  std::uint64_t h = kFnv1aOffset;
  void raw(std::uint64_t v, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= kFnv1aPrime;
    }
  }
  void u64(std::uint64_t v) { raw(v, 8); }
  void u32(std::uint32_t v) { raw(v, 4); }
  void b(bool v) { raw(v ? 1 : 0, 1); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

} // namespace

std::uint64_t config_fingerprint(const Mp5Program& program,
                                 const SimOptions& options) {
  Fp fp;
  // Semantic SimOptions: everything that changes *what* the run computes.
  // Engine knobs (engine, threads, fast_forward, reference_rebalance,
  // max_cycles, paranoid_checks, sinks, telemetry, checkpoint cadence) are
  // excluded by design: they are proven bit-identity-preserving, so a
  // checkpoint may be restored under a different engine configuration — in
  // particular, a lockstep checkpoint restores under the event engine and
  // vice versa.
  fp.u32(static_cast<std::uint32_t>(options.variant));
  fp.u32(options.staleness_bound);
  fp.u32(options.pipelines);
  fp.u64(options.fifo_capacity);
  fp.u32(options.remap_period);
  fp.u32(static_cast<std::uint32_t>(options.sharding));
  fp.b(options.realistic_phantom_channel);
  fp.b(options.phantoms);
  fp.b(options.ideal_queues);
  fp.b(options.naive_single_pipeline);
  fp.u64(options.starvation_threshold);
  fp.u64(options.ecn_threshold);
  fp.b(options.record_egress);
  fp.b(options.check_c1);
  fp.b(options.track_flow_reordering);
  fp.u64(options.seed);
  // Fault plan: the schedule is part of the deterministic run definition.
  const FaultPlan& plan = options.faults;
  fp.u64(plan.pipeline_faults.size());
  for (const auto& pf : plan.pipeline_faults) {
    fp.u32(pf.pipeline);
    fp.u64(pf.fail_at);
    fp.u64(pf.recover_at);
  }
  fp.u64(plan.stalls.size());
  for (const auto& st : plan.stalls) {
    fp.u32(st.pipeline);
    fp.u32(st.stage);
    fp.u64(st.from);
    fp.u64(st.until);
  }
  fp.u64(plan.fifo_pressure.size());
  for (const auto& pr : plan.fifo_pressure) {
    fp.u64(pr.from);
    fp.u64(pr.until);
    fp.u64(pr.capacity);
  }
  fp.f64(plan.phantom_loss_rate);
  fp.f64(plan.phantom_delay_rate);
  fp.u64(plan.phantom_extra_delay);
  // Program shape: enough structure to reject a checkpoint taken against a
  // different compiled program (full IR equality would be overkill — the
  // payload readers validate sizes again anyway).
  fp.u32(program.num_stages);
  fp.u64(program.pvsm.num_slots());
  fp.u64(program.pvsm.registers.size());
  for (const auto& spec : program.pvsm.registers) fp.u64(spec.size);
  fp.u64(program.accesses.size());
  for (std::size_t i = 0; i < program.shardable.size(); ++i) {
    fp.b(program.shardable[i]);
  }
  fp.b(program.has_flow_order);
  return fp.h;
}

// ---------------------------------------------------------------------------
// Mp5Simulator state serialization
// ---------------------------------------------------------------------------

std::string Mp5Simulator::serialize_state(Cycle now) {
  ByteWriter w;
  w.u64(now);
  w.u64(next_seq_);
  w.u64(live_packets_);
  w.u64(source_ != nullptr ? source_->consumed() : 0);

  result_.save(w);
  arena_.save(w);
  state_->save(w);

  w.u64(fifos_.size());
  for (const StageFifo& fifo : fifos_) fifo.save(w);

  // Per-cell arrival slots: only the occupied prefix of each stride.
  for (std::size_t c = 0; c < arrival_count_.size(); ++c) {
    const std::uint32_t n = arrival_count_[c];
    w.u32(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const ArrivedRef& a = arrival_slots_[c * k_ + i];
      w.u32(a.ref);
      w.u32(a.from_lane);
    }
  }

  for (const auto& q : ingress_) {
    w.u64(q.size());
    for (const PacketRef ref : q) w.u32(ref);
  }

  // Phantom channel: slots (including dead ones — the freelist references
  // them by position), freelist in exact order (it decides the next slot
  // recycled), and the heap's raw array (stale lazy-deletion entries and
  // all; the array *is* the heap). channel_index_ and channel_live_ are
  // derived and rebuilt on restore.
  w.u64(channel_slots_.size());
  for (const PendingPhantom& rec : channel_slots_) {
    w.u64(rec.seq);
    w.u32(rec.reg);
    w.u32(rec.index);
    w.u32(rec.pipeline);
    w.u32(rec.stage);
    w.u32(rec.lane);
    w.boolean(rec.cancelled);
    w.u64(rec.stamp);
  }
  w.u64(channel_free_.size());
  for (const std::uint32_t slot : channel_free_) w.u32(slot);
  w.u64(channel_heap_.size());
  for (const ChannelDue& due : channel_heap_) {
    w.u64(due.deliver);
    w.u64(due.seq);
    w.u32(due.slot);
    w.u64(due.stamp);
  }
  w.u64(channel_next_stamp_);

  for (const auto& lane_set : lost_phantoms_) {
    std::vector<ChannelKey> keys(lane_set.begin(), lane_set.end());
    std::sort(keys.begin(), keys.end(),
              [](const ChannelKey& a, const ChannelKey& b) {
                return std::tie(a.seq, a.pipeline, a.stage) <
                       std::tie(b.seq, b.pipeline, b.stage);
              });
    w.u64(keys.size());
    for (const ChannelKey& key : keys) {
      w.u64(key.seq);
      w.u32(key.pipeline);
      w.u32(key.stage);
    }
  }

  w.u64(fault_cursor_);
  for (const std::uint64_t s : fault_rng_.state()) w.u64(s);
  w.u64(current_pressure_);
  for (PipelineId p = 0; p < k_; ++p) w.boolean(lane_alive_[p]);
  w.u64(fail_marker_);
  w.boolean(awaiting_egress_after_failure_);

  c1_.save(w);

  {
    std::vector<std::pair<std::uint64_t, SeqNo>> flows(
        flow_last_egress_.begin(), flow_last_egress_.end());
    std::sort(flows.begin(), flows.end());
    w.u64(flows.size());
    for (const auto& [flow, seq] : flows) {
      w.u64(flow);
      w.u64(seq);
    }
  }

  // Telemetry counters/gauges, when a registry is attached. Restored via
  // inc()/set() into the (fresh, zeroed) restoring registry; histograms and
  // the event ring are diagnostics and are not carried across a restore.
  w.boolean(telem_ != nullptr);
  if (telem_ != nullptr) {
    w.u64(telem_->counters().size());
    for (const auto& [name, counter] : telem_->counters()) {
      w.str(name);
      w.u64(counter.value());
    }
    w.u64(telem_->gauges().size());
    for (const auto& [name, gauge] : telem_->gauges()) {
      w.str(name);
      w.f64(gauge.value());
    }
  }

  return w.take();
}

Cycle Mp5Simulator::restore_state(ByteReader& r,
                                  std::uint64_t& trace_consumed) {
  const Cycle now = r.u64();
  next_seq_ = r.u64();
  live_packets_ = r.u64();
  trace_consumed = r.u64();

  result_.load(r);
  arena_.load(r);
  state_->load(r);

  if (r.count(1) != fifos_.size()) {
    throw Error("checkpoint: stage-FIFO grid size mismatch");
  }
  for (StageFifo& fifo : fifos_) fifo.load(r);
  // Fault-plan pressure clamps are re-applied below once current_pressure_
  // is known (StageFifo::load restores content, not the transient clamp).

  for (std::size_t c = 0; c < arrival_count_.size(); ++c) {
    const std::uint32_t n = r.u32();
    if (n > k_) {
      throw Error("checkpoint: arrival slot count exceeds stride");
    }
    arrival_count_[c] = n;
    for (std::uint32_t i = 0; i < n; ++i) {
      ArrivedRef& a = arrival_slots_[c * k_ + i];
      a.ref = r.u32();
      a.from_lane = r.u32();
      if (!arena_.live(a.ref)) {
        throw Error("checkpoint: arrival slot references a dead packet");
      }
      if (a.from_lane >= k_) {
        throw Error("checkpoint: arrival slot lane out of range");
      }
    }
  }

  for (auto& q : ingress_) {
    q.clear();
    const std::uint64_t n = r.count(4);
    for (std::uint64_t i = 0; i < n; ++i) {
      const PacketRef ref = r.u32();
      if (!arena_.live(ref)) {
        throw Error("checkpoint: ingress queue references a dead packet");
      }
      q.push_back(ref);
    }
  }

  channel_slots_.clear();
  channel_index_.clear();
  channel_live_ = 0;
  const std::uint64_t nslots = r.count(37);
  channel_slots_.reserve(static_cast<std::size_t>(nslots));
  for (std::uint64_t i = 0; i < nslots; ++i) {
    PendingPhantom rec;
    rec.seq = r.u64();
    rec.reg = r.u32();
    rec.index = r.u32();
    rec.pipeline = r.u32();
    rec.stage = r.u32();
    rec.lane = r.u32();
    rec.cancelled = r.boolean();
    rec.stamp = r.u64();
    if (rec.stamp != 0) {
      if (rec.pipeline >= k_ || rec.stage >= num_stages_) {
        throw Error("checkpoint: channel record addresses an invalid cell");
      }
      channel_index_[ChannelKey{rec.seq, rec.pipeline, rec.stage}] =
          static_cast<std::uint32_t>(i);
      ++channel_live_;
    }
    channel_slots_.push_back(rec);
  }
  channel_free_.clear();
  const std::uint64_t nfree = r.count(4);
  for (std::uint64_t i = 0; i < nfree; ++i) {
    const std::uint32_t slot = r.u32();
    if (slot >= channel_slots_.size() || channel_slots_[slot].stamp != 0) {
      throw Error("checkpoint: channel freelist references a live slot");
    }
    channel_free_.push_back(slot);
  }
  channel_heap_.clear();
  const std::uint64_t nheap = r.count(28);
  channel_heap_.reserve(static_cast<std::size_t>(nheap));
  for (std::uint64_t i = 0; i < nheap; ++i) {
    ChannelDue due;
    due.deliver = r.u64();
    due.seq = r.u64();
    due.slot = r.u32();
    due.stamp = r.u64();
    if (due.slot >= channel_slots_.size()) {
      throw Error("checkpoint: channel heap entry out of range");
    }
    channel_heap_.push_back(due);
  }
  channel_next_stamp_ = r.u64();
  due_scratch_.clear();

  for (auto& lane_set : lost_phantoms_) {
    lane_set.clear();
    const std::uint64_t n = r.count(16);
    for (std::uint64_t i = 0; i < n; ++i) {
      ChannelKey key;
      key.seq = r.u64();
      key.pipeline = r.u32();
      key.stage = r.u32();
      lane_set.insert(key);
    }
  }

  fault_cursor_ = r.u64();
  if (fault_cursor_ > fault_sched_.lane_events().size()) {
    throw Error("checkpoint: fault cursor past the end of the schedule");
  }
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& s : rng_state) s = r.u64();
  fault_rng_.set_state(rng_state);
  current_pressure_ = r.u64();
  for (PipelineId p = 0; p < k_; ++p) lane_alive_[p] = r.boolean();
  fail_marker_ = r.u64();
  awaiting_egress_after_failure_ = r.boolean();
  for (StageFifo& fifo : fifos_) fifo.set_pressure_capacity(current_pressure_);

  c1_.load(r);

  flow_last_egress_.clear();
  const std::uint64_t nflows = r.count(16);
  flow_last_egress_.reserve(static_cast<std::size_t>(nflows));
  for (std::uint64_t i = 0; i < nflows; ++i) {
    const std::uint64_t flow = r.u64();
    flow_last_egress_[flow] = r.u64();
  }

  if (r.boolean()) {
    const std::uint64_t nc = r.count(16);
    for (std::uint64_t i = 0; i < nc; ++i) {
      const std::string name = r.str();
      const std::uint64_t value = r.u64();
      if (telem_ != nullptr) telem_->counter(name).inc(value);
    }
    const std::uint64_t ng = r.count(16);
    for (std::uint64_t i = 0; i < ng; ++i) {
      const std::string name = r.str();
      const double value = r.f64();
      if (telem_ != nullptr) telem_->gauge(name).set(value);
    }
  }

  // The event engine's activity bitmap is derived state (never
  // serialized): rebuild it from the restored FIFO/arrival occupancy, so
  // a checkpoint taken under either engine restores under either.
  rebuild_activity();

  return now;
}

void Mp5Simulator::do_checkpoint(Cycle now) {
  if (workers_ > 1) {
    // Fold the workers' persistent C1 scratches into the shared checker so
    // the payload is complete. Identity-preserving: the scratches would be
    // absorbed at run end anyway, and set-union/sum commute.
    for (auto& ctx : worker_ctx_) {
      c1_.absorb(ctx.c1);
      ctx.c1 = C1Scratch{};
    }
  }
  opts_.checkpoint_sink(
      now, frame_checkpoint(config_fingerprint(*prog_, opts_), now,
                            serialize_state(now)));
}

SimResult Mp5Simulator::resume(TraceSource& source,
                               std::string_view checkpoint_blob) {
  if (next_seq_ != 0 || live_packets_ != 0 || result_.offered != 0) {
    throw Error(
        "Mp5Simulator::resume requires a freshly constructed simulator");
  }
  const CheckpointInfo info = parse_checkpoint(checkpoint_blob);
  const std::uint64_t expect = config_fingerprint(*prog_, opts_);
  if (info.fingerprint != expect) {
    throw Error(
        "checkpoint configuration fingerprint mismatch: the checkpoint was "
        "taken under a different program or semantic simulator options");
  }
  // work_remaining()/next_event_cycle() peek the source during the restored
  // walk, so bind it before replaying state.
  source_ = &source;
  ByteReader r(info.payload);
  std::uint64_t consumed = 0;
  Cycle now = 0;
  try {
    now = restore_state(r, consumed);
    r.expect_done();
  } catch (...) {
    source_ = nullptr;
    throw;
  }
  if (now != info.cycle) {
    source_ = nullptr;
    throw Error("checkpoint corrupted (frame/payload cycle mismatch)");
  }
  source.skip_to(consumed);
  if (opts_.checkpoint_interval != 0) {
    // Never re-emit the checkpoint we restored from: the next boundary is
    // strictly after `now`.
    next_checkpoint_ = ((now / opts_.checkpoint_interval) + 1) *
                       opts_.checkpoint_interval;
  }
  return run_loop(source, now);
}

} // namespace mp5
