// Multiple independent logical MP5 switches on one physical switch
// (§3.1, footnote 1): "MP5 programs a subset m of k pipelines with the
// same program ... allowing the programmers to program the remaining
// pipelines with some other packet processing programs, thus creating
// multiple independent logical MP5, each with varying number of parallel
// pipelines."
//
// Partitions do not share pipelines or state, so the composite switch is
// exactly the product of the per-partition simulations: a front-end
// classifier routes each arriving packet to its program's partition, and
// each partition is an independent Mp5Simulator over its pipeline subset.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "metrics/sim_result.hpp"
#include "mp5/simulator.hpp"
#include "mp5/transform.hpp"
#include "trace/trace.hpp"

namespace mp5 {

/// Chooses the partition (by index) for an arriving packet.
using PartitionClassifier = std::function<std::size_t(const TraceItem&)>;

struct PartitionSpec {
  std::string name;
  const Mp5Program* program = nullptr;
  /// Number of physical pipelines dedicated to this logical MP5.
  std::uint32_t pipelines = 0;
  /// Per-partition simulator options; `pipelines` above overrides the
  /// field inside.
  SimOptions options;
};

struct PartitionResult {
  std::string name;
  SimResult result;
};

class PartitionedSwitch {
public:
  /// total_pipelines must equal the sum of the partitions' pipelines —
  /// the physical switch is fully divided.
  PartitionedSwitch(std::vector<PartitionSpec> partitions,
                    std::uint32_t total_pipelines);

  /// Classify and run. The trace must be sorted by arrival.
  std::vector<PartitionResult> run(const Trace& trace,
                                   const PartitionClassifier& classify);

  /// Aggregate normalized throughput: delivered rate over offered rate
  /// across all partitions.
  static double aggregate_throughput(const std::vector<PartitionResult>& r);

private:
  std::vector<PartitionSpec> partitions_;
};

} // namespace mp5
