// Timeline instrumentation: a per-event stream from the MP5 simulator,
// used by cycle-exact tests (e.g. the Figure 3 Table III scenario), the
// §3.4 invariant checks, and mp5sim's --timeline mode.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace mp5 {

struct TimelineEvent {
  enum class Kind : std::uint8_t {
    kAdmit,        // packet assigned seq and sprayed to a pipeline ingress
    kPhantomPush,  // phantom delivered to (pipeline, stage) FIFO
    kPassThrough,  // stateless processing at (pipeline, stage)
    kInsert,       // data packet replaced its phantom at (pipeline, stage)
    kPopData,      // stateful processing at (pipeline, stage)
    kPopWasted,    // cancelled phantom reclaimed (one wasted cycle)
    kBlocked,      // FIFO head is a phantom: stage idles this cycle
    kSteer,        // crossbar move between pipelines at a stage boundary
    kCancel,       // conservative phantom cancelled in flight
    kEgress,
    kDropData,
    kDropStarved,
    kDropFault,    // packet lost to an injected fault (lane death, lost
                   // phantom, stalled cell)
    kLaneFail,     // scheduled pipeline failure took the lane down
    kLaneRecover,  // scheduled recovery brought the lane back (empty)
    kRemap,        // periodic shard rebalance re-homed indices (arg = moves)
  };
  Kind kind = Kind::kAdmit;
  Cycle cycle = 0;
  PipelineId pipeline = 0;
  StageId stage = 0;
  SeqNo seq = kInvalidSeqNo; // kInvalidSeqNo for packet-less events
  std::uint64_t arg = 0;     // event-specific payload (e.g. remap moves)
};

using TimelineHook = std::function<void(const TimelineEvent&)>;

// Inline (not in mp5_core's simulator.cpp) so lower layers — notably the
// telemetry exporters — can name events without a link dependency on the
// simulator.
inline const char* to_string(TimelineEvent::Kind kind) {
  switch (kind) {
    case TimelineEvent::Kind::kAdmit: return "admit";
    case TimelineEvent::Kind::kPhantomPush: return "phantom";
    case TimelineEvent::Kind::kPassThrough: return "pass";
    case TimelineEvent::Kind::kInsert: return "insert";
    case TimelineEvent::Kind::kPopData: return "pop";
    case TimelineEvent::Kind::kPopWasted: return "wasted";
    case TimelineEvent::Kind::kBlocked: return "blocked";
    case TimelineEvent::Kind::kSteer: return "steer";
    case TimelineEvent::Kind::kCancel: return "cancel";
    case TimelineEvent::Kind::kEgress: return "egress";
    case TimelineEvent::Kind::kDropData: return "drop";
    case TimelineEvent::Kind::kDropStarved: return "drop_starved";
    case TimelineEvent::Kind::kDropFault: return "drop_fault";
    case TimelineEvent::Kind::kLaneFail: return "lane_fail";
    case TimelineEvent::Kind::kLaneRecover: return "lane_recover";
    case TimelineEvent::Kind::kRemap: return "remap";
  }
  return "?";
}

} // namespace mp5
