// Timeline instrumentation: a per-event stream from the MP5 simulator,
// used by cycle-exact tests (e.g. the Figure 3 Table III scenario), the
// §3.4 invariant checks, and mp5sim's --timeline mode.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace mp5 {

struct TimelineEvent {
  enum class Kind : std::uint8_t {
    kAdmit,        // packet assigned seq and sprayed to a pipeline ingress
    kPhantomPush,  // phantom delivered to (pipeline, stage) FIFO
    kPassThrough,  // stateless processing at (pipeline, stage)
    kInsert,       // data packet replaced its phantom at (pipeline, stage)
    kPopData,      // stateful processing at (pipeline, stage)
    kPopWasted,    // cancelled phantom reclaimed (one wasted cycle)
    kBlocked,      // FIFO head is a phantom: stage idles this cycle
    kSteer,        // crossbar move between pipelines at a stage boundary
    kCancel,       // conservative phantom cancelled in flight
    kEgress,
    kDropData,
    kDropStarved,
    kDropFault,    // packet lost to an injected fault (lane death, lost
                   // phantom, stalled cell)
    kLaneFail,     // scheduled pipeline failure took the lane down
    kLaneRecover,  // scheduled recovery brought the lane back (empty)
  };
  Kind kind = Kind::kAdmit;
  Cycle cycle = 0;
  PipelineId pipeline = 0;
  StageId stage = 0;
  SeqNo seq = kInvalidSeqNo; // kInvalidSeqNo for packet-less events
};

using TimelineHook = std::function<void(const TimelineEvent&)>;

const char* to_string(TimelineEvent::Kind kind);

} // namespace mp5
