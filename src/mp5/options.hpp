// Configuration of the MP5 switch simulator and its ablated variants.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/error.hpp"
#include "mp5/faults.hpp"
#include "mp5/shard_map.hpp"
#include "mp5/timeline.hpp"
#include "packet/packet.hpp"

namespace mp5 {

namespace telemetry {
class Telemetry;
}

/// Execution engine for the cycle loop (SimOptions::engine). Both engines
/// produce bit-identical SimResult for every configuration, seed and fault
/// plan — the fuzz matrix and the determinism suite enforce it.
enum class SimEngine : std::uint8_t {
  /// Dense walk: every (lane, stage) cell is visited every cycle.
  kLockstep = 0,
  /// Event-driven conservative-lookahead walk: cells are visited only when
  /// an activity bit says they might hold work, and stretches of cycles
  /// where no cell can make progress are skipped arithmetically even under
  /// a scheduled fault plan (the lockstep fast-forward only skips fully
  /// idle, fault-free stretches). Cost per cycle is proportional to
  /// occupied cells instead of k x stages.
  kEvent = 1,
};

inline const char* to_string(SimEngine e) {
  return e == SimEngine::kEvent ? "event" : "lockstep";
}

inline SimEngine engine_from_string(const std::string& s) {
  if (s == "lockstep") return SimEngine::kLockstep;
  if (s == "event") return SimEngine::kEvent;
  throw ConfigError("SimOptions::engine: unknown engine '" + s +
                    "' (expected 'lockstep' or 'event')");
}

/// Which consistency design the options describe (SimOptions::variant).
///
/// kMp5 covers the whole Mp5Simulator family — full MP5 and its ablations
/// (ideal / no-d2 / no-d4 / naive are expressed through the other knobs).
/// kScr and kRelaxed select the replicated-state baselines implemented by
/// ScrSimulator / RelaxedSimulator (src/baseline/replicated.hpp); the
/// Mp5Simulator constructor rejects them, and the replicated simulators
/// reject every MP5-only knob by name (see the variant/knob validation
/// sweep in tests/test_variants.cpp).
enum class DesignVariant : std::uint8_t {
  /// Shared-state multi-pipeline switch (D1-D4 and ablations thereof).
  kMp5 = 0,
  /// State-Compute Replication (Xu et al., arXiv 2309.14647): every
  /// pipeline holds a full register replica; remote updates are replayed
  /// from packet history after a pipeline-traversal delay. No cross-
  /// pipeline ordering (no D4), no sharding (no D2).
  kScr = 1,
  /// Relaxed-consistency replication (Cascone et al., arXiv 1703.05442):
  /// same replicated layout, but remote updates are batched and applied
  /// only at periodic synchronization boundaries every `staleness_bound`
  /// cycles — reads may observe state up to that bound stale.
  kRelaxed = 2,
};

inline const char* to_string(DesignVariant v) {
  switch (v) {
    case DesignVariant::kMp5: return "mp5";
    case DesignVariant::kScr: return "scr";
    case DesignVariant::kRelaxed: return "relaxed";
  }
  return "mp5";
}

inline DesignVariant variant_from_string(const std::string& s) {
  if (s == "mp5") return DesignVariant::kMp5;
  if (s == "scr") return DesignVariant::kScr;
  if (s == "relaxed") return DesignVariant::kRelaxed;
  throw ConfigError("SimOptions::variant: unknown variant '" + s +
                    "' (expected 'mp5', 'scr' or 'relaxed')");
}

struct SimOptions {
  /// Consistency design. kMp5 (the default) is consumed by Mp5Simulator;
  /// kScr / kRelaxed select the replicated-state baselines and are only
  /// accepted by ScrSimulator / RelaxedSimulator. Semantic — part of the
  /// checkpoint config fingerprint, so a checkpoint taken under one
  /// variant refuses to restore under another.
  DesignVariant variant = DesignVariant::kMp5;

  /// Staleness bound Δ for DesignVariant::kRelaxed, in cycles: buffered
  /// remote state updates are applied at every cycle divisible by Δ, so a
  /// read observes state at most Δ cycles stale. Required >= 1 for the
  /// relaxed variant; must stay 0 (unset) for every other variant. Part
  /// of the checkpoint config fingerprint.
  std::uint32_t staleness_bound = 0;

  /// Number of parallel pipelines (k). The paper's default is 4 (§4.3.1).
  std::uint32_t pipelines = 4;

  /// Per-lane FIFO capacity at each stateful stage; 0 = unbounded, which
  /// models the paper's "dynamically adapt per-stage FIFO sizes to ensure
  /// no packet loss" simulator configuration (§4.3.1). The ASIC sizing of
  /// §4.2 uses 8 entries per lane.
  std::size_t fifo_capacity = 0;

  /// Dynamic-state-sharding period in cycles (Figure 6 runs "every few
  /// 100s of clock cycles"; the experiments use 100). Ignored for static
  /// sharding policies.
  std::uint32_t remap_period = 100;

  ShardingPolicy sharding = ShardingPolicy::kDynamic;

  /// Model the phantom channel as a physical pipeline: a phantom
  /// generated at arrival hops one stage per cycle on its dedicated
  /// channel and reaches stage s after s cycles (the data packet needs at
  /// least s+1: ingress plus per-stage processing, so phantoms still
  /// always precede their data packets — Invariant 1). When false,
  /// phantoms are delivered in the arrival cycle (an equivalent
  /// simplification; see DESIGN.md).
  bool realistic_phantom_channel = false;

  /// Design principle D4 (phantom packets). Disabling reproduces the
  /// "MP5 w/ D1-D3 but w/o D4" ablation of Figure 3 / §4.3.2: stateful
  /// packets are queued directly on arrival at the stateful stage, so
  /// ordering holds only among packets already present.
  bool phantoms = true;

  /// Ideal MP5 upper bound (§3.5.2/§4.3.3): per-register-index ordering
  /// (no head-of-line blocking), free reclamation of cancelled phantoms.
  /// Usually combined with ShardingPolicy::kIdealLpt.
  bool ideal_queues = false;

  /// Naive shared-memory design from D1's discussion: all state pinned to
  /// pipeline 0 and every packet admitted to pipeline 0. Forces
  /// ShardingPolicy::kSinglePipeline.
  bool naive_single_pipeline = false;

  /// Starvation guard (§3.4): when a stage's oldest queued stateful entry
  /// has waited more than this many cycles, an arriving stateless
  /// pass-through packet is dropped instead of being served with priority,
  /// freeing the slot for the queue. Invariant 2 still holds (the
  /// stateless packet is dropped, never queued). 0 = disabled.
  std::uint64_t starvation_threshold = 0;

  /// ECN-style backpressure (§3.4): mark a data packet when it joins a
  /// stage FIFO whose occupancy exceeds this threshold. The mark is
  /// metadata (SimResult::ecn_marked counts them); a sender reacting to it
  /// is outside the switch model. 0 = disabled.
  std::size_t ecn_threshold = 0;

  /// Safety valve for runaway runs; tests assert it is never hit.
  std::uint64_t max_cycles = 5'000'000;

  /// Cycle-loop engine. kLockstep is the classic dense per-cycle walk;
  /// kEvent visits only cells whose activity bits are set and skips
  /// no-progress cycle stretches arithmetically (works under fault plans,
  /// unlike fast_forward). Results are bit-identical either way; the knob
  /// is excluded from the checkpoint config fingerprint, so a checkpoint
  /// taken under one engine restores under the other.
  SimEngine engine = SimEngine::kLockstep;

  /// Worker threads for the per-lane parallel engine. 1 (the default)
  /// runs the classic sequential engine. N > 1 partitions the k lanes
  /// into contiguous blocks stepped by a persistent worker pool with a
  /// per-cycle barrier; cross-lane effects are staged per worker and
  /// merged deterministically, so results are bit-identical to the
  /// sequential engine for every seed and fault plan. Clamped to k.
  /// Incompatible with `telemetry` and `timeline` (their event streams
  /// are inherently ordered by the sequential walk).
  std::uint32_t threads = 1;

  /// Idle-cycle fast-forward: when no packet is anywhere in the switch
  /// and no fault plan is scheduled, jump the clock straight to the next
  /// event (trace arrival, phantom-channel delivery) instead of stepping
  /// empty cycles one by one. Sparse traces then cost O(packets) instead
  /// of O(cycles). Results — including SimResult::cycles_run — are
  /// identical with the optimization on or off; disable only to measure
  /// the raw cycle loop.
  bool fast_forward = true;

  /// Route periodic rebalances through the full-scan reference
  /// implementation (ShardedState::rebalance_reference) instead of the
  /// incremental O(touched) path. Validation/bench knob: the two produce
  /// bit-identical results, so this only changes how long a remap
  /// boundary takes.
  bool reference_rebalance = false;

  /// Record per-packet egress headers (needed for equivalence checks).
  bool record_egress = false;

  /// Track C1 violations via the access log.
  bool check_c1 = true;

  /// Track per-flow egress reordering.
  bool track_flow_reordering = false;

  std::uint64_t seed = 1;

  /// Scheduled fault injection (see faults.hpp). An empty plan is a
  /// fault-free run. Validated at simulator construction; phantom-channel
  /// faults additionally require `realistic_phantom_channel`, and
  /// pipeline failures require a sharding policy that can re-home state
  /// (not kSinglePipeline).
  FaultPlan faults;

  /// Per-cycle runtime invariant watchdog: validates Invariant 1 (per-lane
  /// FIFO ordering), Invariant 2 (queued entries are stateful), FIFO
  /// occupancy and live-packet accounting, and phantom-directory/channel
  /// consistency, throwing InvariantError instead of silently corrupting
  /// results. Costs O(queued entries) per cycle — opt-in for tests and
  /// debugging.
  bool paranoid_checks = false;

  // -- soak mode: checkpointing and streaming sinks (ISSUE 6) --

  /// Checkpoint every N cycles (0 = disabled). Requires checkpoint_sink.
  /// The checkpoint is taken at the top of the cycle, before that cycle's
  /// fault events and arrivals; fast-forward jumps are clamped so no
  /// boundary is skipped (behavior-neutral: the extra boundary cycles are
  /// provable no-ops). Restoring from any emitted checkpoint reproduces
  /// the uninterrupted run's SimResult field-by-field.
  std::uint64_t checkpoint_interval = 0;

  /// Receives each framed `mp5-checkpoint v1` blob (see mp5/checkpoint.hpp
  /// for the file helpers). Called from the run loop; keep it cheap or
  /// accept the stall.
  std::function<void(Cycle, std::string&&)> checkpoint_sink;

  /// Streaming egress: when set, egress records are handed to the sink
  /// instead of accumulating in SimResult::egress — the soak driver's
  /// flat-RSS path (rolling verification consumes and discards them).
  /// Independent of record_egress.
  std::function<void(EgressRecord&&)> egress_sink;

  /// Streaming fault-drop notifications (seq, state_touched), the sink
  /// counterpart of SimResult::fault_drops.
  std::function<void(SeqNo, bool)> fault_drop_sink;

  /// Optional per-event instrumentation hook (tests, mp5sim --timeline).
  TimelineHook timeline;

  /// Optional telemetry sink (non-owning; see src/telemetry/). When null —
  /// the default — every hook in the simulator and its components reduces
  /// to a never-taken branch and the run is bit-identical to a build
  /// without telemetry. Attach one Telemetry object per run: counters,
  /// gauges and histograms are registered at simulator construction and
  /// the event ring records the cycle-level timeline.
  telemetry::Telemetry* telemetry = nullptr;

  /// Name prefix for every metric this simulator registers (e.g.
  /// "fabric.leaf0."). Registration is find-or-create by flat name, so two
  /// simulators sharing one Telemetry MUST use distinct prefixes or their
  /// counters silently merge. Empty (the default) keeps the classic flat
  /// single-simulator names ("sim.admitted", "fifo.push", ...).
  std::string telemetry_prefix;
};

} // namespace mp5
