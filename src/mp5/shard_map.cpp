#include "mp5/shard_map.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "packet/packet.hpp"
#include "telemetry/telemetry.hpp"

namespace mp5 {

ShardedState::ShardedState(const std::vector<ir::RegisterSpec>& specs,
                           const std::vector<bool>& shardable,
                           std::uint32_t pipelines, ShardingPolicy policy,
                           Rng rng)
    : k_(pipelines), policy_(policy), alive_(pipelines, true),
      shardable_(shardable) {
  if (pipelines == 0) throw ConfigError("ShardedState: pipelines must be > 0");
  if (shardable_.size() != specs.size()) {
    throw ConfigError("ShardedState: shardable mask size mismatch");
  }
  for (const auto& spec : specs) {
    std::vector<Value> arr(spec.size, 0);
    for (std::size_t i = 0; i < spec.init.size() && i < spec.size; ++i) {
      arr[i] = spec.init[i];
    }
    if (spec.init.size() == 1) std::fill(arr.begin(), arr.end(), spec.init[0]);
    values_.push_back(std::move(arr));
  }
  const bool static_policy = policy_ == ShardingPolicy::kStaticRandom ||
                             policy_ == ShardingPolicy::kSinglePipeline ||
                             k_ == 1;
  resets_.resize(specs.size());
  for (std::size_t r = 0; r < specs.size(); ++r) {
    resets_[r] = static_policy || shardable_[r];
    PerReg per;
    per.map.assign(specs[r].size, pin_pipeline());
    per.access.assign(specs[r].size, 0);
    per.stamp.assign(specs[r].size, 0);
    per.in_flight.assign(specs[r].size, 0);
    if (shardable_[r] && policy_ != ShardingPolicy::kSinglePipeline) {
      // Initial placement: uniform random spread across pipelines. Every
      // policy starts from the same kind of compile-time placement; the
      // policies differ only in whether/how they rebalance.
      for (auto& p : per.map) {
        p = static_cast<PipelineId>(rng.next_below(k_));
      }
    }
    per.members.resize(k_);
    per.pos.resize(specs[r].size);
    for (RegIndex i = 0; i < per.map.size(); ++i) {
      per.pos[i] = static_cast<std::uint32_t>(per.members[per.map[i]].size());
      per.members[per.map[i]].push_back(i);
    }
    per.lane_load.assign(k_, 0);
    regs_.push_back(std::move(per));
  }
}

Value ShardedState::read(RegId reg, RegIndex index) {
  return values_[reg][index];
}

void ShardedState::write(RegId reg, RegIndex index, Value v) {
  values_[reg][index] = v;
}

PipelineId ShardedState::pipeline_of(RegId reg, RegIndex index) const {
  if (!shardable_[reg] || policy_ == ShardingPolicy::kSinglePipeline) {
    return pin_pipeline();
  }
  if (index == kUnresolvedIndex) return pin_pipeline();
  return regs_[reg].map[index];
}

void ShardedState::set_telemetry(const telemetry::Scope& sink) {
  t_rebalance_runs_ = &sink.counter("shard.rebalance_runs");
  t_rebalance_moves_ = &sink.counter("shard.rebalance_moves");
  t_fault_rehomed_ = &sink.counter("shard.fault_rehomed_indices");
  t_accesses_ = &sink.counter("shard.state_accesses");
  t_touched_ = &sink.counter("shard.touched_indices");
}

void ShardedState::note_resolved(RegId reg, RegIndex index) {
  if (index == kUnresolvedIndex) return;
  auto& per = regs_[reg];
  if (per.stamp[index] == per.epoch) {
    ++per.access[index];
  } else {
    // First touch this window: stamp the counter and remember the index so
    // the next rebalance scans only the working set.
    per.stamp[index] = per.epoch;
    per.access[index] = 1;
    per.touched.push_back(index);
  }
  per.lane_load[per.map[index]] += 1;
  ++per.in_flight[index];
  if (resets_[reg]) window_dirty_ = true;
  MP5_TELEM_INC(t_accesses_);
}

void ShardedState::note_completed(RegId reg, RegIndex index) {
  if (index == kUnresolvedIndex) return;
  auto& per = regs_[reg];
  if (per.in_flight[index] == 0) {
    throw Error("ShardedState::note_completed: in-flight counter underflow "
                "(reg " + std::to_string(reg) + ", index " +
                std::to_string(index) + ")");
  }
  --per.in_flight[index];
}

std::uint32_t ShardedState::alive_count() const {
  return static_cast<std::uint32_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

void ShardedState::move_index(PerReg& per, RegIndex i, PipelineId to) {
  const PipelineId from = per.map[i];
  if (from == to) return;
  auto& src = per.members[from];
  const std::uint32_t slot = per.pos[i];
  const RegIndex last = src.back();
  src[slot] = last;
  per.pos[last] = slot;
  src.pop_back();
  per.pos[i] = static_cast<std::uint32_t>(per.members[to].size());
  per.members[to].push_back(i);
  per.map[i] = to;
}

void ShardedState::end_window(PerReg& per) {
  per.touched.clear();
  std::fill(per.lane_load.begin(), per.lane_load.end(), 0);
  if (++per.epoch == 0) {
    // One O(size) stamp sweep every 2^32 windows keeps recycled epoch
    // values from resurrecting counters stamped four billion windows ago.
    std::fill(per.stamp.begin(), per.stamp.end(), 0);
    per.epoch = 1;
  }
}

void ShardedState::finish_rebalance(std::size_t moves, std::uint64_t touched) {
  window_dirty_ = false;
  total_moves_ += moves;
  MP5_TELEM_INC(t_rebalance_runs_);
  MP5_TELEM_ADD(t_rebalance_moves_, moves);
  MP5_TELEM_ADD(t_touched_, touched);
}

std::size_t ShardedState::fail_pipeline(PipelineId pipeline) {
  if (pipeline >= k_) {
    throw ConfigError("ShardedState::fail_pipeline: pipeline out of range");
  }
  if (!alive_[pipeline]) {
    throw Error("ShardedState::fail_pipeline: pipeline already dead");
  }
  alive_[pipeline] = false;
  if (alive_count() == 0) {
    throw Error("ShardedState::fail_pipeline: no surviving pipeline");
  }
  if (pin_ == pipeline) {
    for (PipelineId p = 0; p < k_; ++p) {
      if (alive_[p]) {
        pin_ = p;
        break;
      }
    }
  }
  std::size_t moved = 0;
  for (RegId r = 0; r < regs_.size(); ++r) {
    // Pinned arrays and the single-pipeline policy route through pin_,
    // which moved above; only mapped indices need re-homing.
    if (!shardable_[r] || policy_ == ShardingPolicy::kSinglePipeline) {
      continue;
    }
    auto& per = regs_[r];
    // Survivor load/count seed in O(k) from the incremental aggregates
    // (the full-scan original recomputed both over every index).
    std::vector<std::uint64_t> load(k_, 0);
    std::vector<std::uint64_t> count(k_, 0);
    for (PipelineId p = 0; p < k_; ++p) {
      if (!alive_[p]) continue;
      load[p] = per.lane_load[p];
      count[p] = per.members[p].size();
    }
    // The dead lane's membership list, restored to the ascending-index
    // order the full-map scan walked in (the list itself is swap-remove
    // order, and each move below mutates it).
    scratch_.assign(per.members[pipeline].begin(),
                    per.members[pipeline].end());
    std::sort(scratch_.begin(), scratch_.end());
    for (const RegIndex i : scratch_) {
      if (per.in_flight[i] != 0) {
        throw Error("ShardedState::fail_pipeline: reg " + std::to_string(r) +
                    " index " + std::to_string(i) + " has packets in "
                    "flight (drain the lane before remapping)");
      }
      // Least-loaded survivor by windowed access count, ties broken by
      // mapped-index count: the access counters are often all zero here
      // (they reset every remap period), and without the tie-break every
      // re-homed index would land on the first alive lane, turning one
      // survivor into a hotspot.
      PipelineId target = pin_;
      std::uint64_t best_load = ~std::uint64_t{0};
      std::uint64_t best_count = ~std::uint64_t{0};
      for (PipelineId p = 0; p < k_; ++p) {
        if (!alive_[p]) continue;
        if (load[p] < best_load ||
            (load[p] == best_load && count[p] < best_count)) {
          target = p;
          best_load = load[p];
          best_count = count[p];
        }
      }
      const std::uint32_t window_ctr = eff_access(per, i);
      load[target] += window_ctr;
      ++count[target];
      move_index(per, i, target);
      per.lane_load[target] += window_ctr;
      ++moved;
    }
    per.lane_load[pipeline] = 0;
  }
  total_moves_ += moved;
  MP5_TELEM_ADD(t_fault_rehomed_, moved);
  return moved;
}

void ShardedState::recover_pipeline(PipelineId pipeline) {
  if (pipeline >= k_) {
    throw ConfigError("ShardedState::recover_pipeline: pipeline out of range");
  }
  if (alive_[pipeline]) {
    throw Error("ShardedState::recover_pipeline: pipeline is not dead");
  }
  alive_[pipeline] = true;
}

std::vector<std::uint64_t> ShardedState::pipeline_load(RegId reg) const {
  return regs_[reg].lane_load;
}

// ---------------------------------------------------------------------------
// Incremental periodic rebalance: O(touched), identical decisions to the
// full-scan reference below.
// ---------------------------------------------------------------------------

std::size_t ShardedState::rebalance() {
  if (policy_ == ShardingPolicy::kStaticRandom ||
      policy_ == ShardingPolicy::kSinglePipeline || k_ == 1) {
    // Static policies never move state, but the windowed counters still
    // close each period (epoch bump; the full-scan original memset them).
    std::uint64_t touched = 0;
    for (auto& per : regs_) {
      touched += per.touched.size();
      end_window(per);
    }
    finish_rebalance(0, touched);
    return 0;
  }
  std::size_t moves = 0;
  std::uint64_t touched = 0;
  for (RegId r = 0; r < regs_.size(); ++r) {
    if (!shardable_[r]) continue;
    moves += policy_ == ShardingPolicy::kIdealLpt ? rebalance_lpt(r)
                                                  : rebalance_one(r);
    touched += regs_[r].touched.size();
    end_window(regs_[r]);
  }
  finish_rebalance(moves, touched);
  return moves;
}

std::size_t ShardedState::rebalance_one(RegId reg) {
  // Figure 6: find pipelines H (max aggregate counter) and L (min); move
  // the index mapped to H with the largest counter value < (cmax-cmin)/2,
  // provided its in-flight counter is zero.
  auto& per = regs_[reg];
  // Consider only surviving lanes: a dead lane holds no active indices
  // and must never become a move target.
  std::int64_t hi = -1, lo = -1;
  for (PipelineId p = 0; p < k_; ++p) {
    if (!alive_[p]) continue;
    if (hi < 0 || per.lane_load[p] > per.lane_load[hi]) hi = p;
    if (lo < 0 || per.lane_load[p] < per.lane_load[lo]) lo = p;
  }
  if (hi < 0 || hi == lo || per.lane_load[hi] == per.lane_load[lo]) return 0;
  const std::uint64_t threshold =
      (per.lane_load[hi] - per.lane_load[lo]) / 2;
  // threshold == 0 admits no candidate (every counter is >= 0).
  if (threshold == 0) return 0;

  // The reference scan walks every index ascending with a strict-greater
  // best, i.e. the winner is the candidate with the largest counter and,
  // among equals, the smallest index. Candidates split into two classes:
  // touched this window (counter >= 1) and untouched (counter 0). A
  // touched candidate always beats an untouched one, so scan the
  // working-set list first with an explicit (counter desc, index asc)
  // comparator.
  std::int64_t best = -1;
  std::uint64_t best_ctr = 0;
  for (const RegIndex i : per.touched) {
    if (per.map[i] != static_cast<PipelineId>(hi)) continue;
    const std::uint32_t ctr = per.access[i]; // touched => stamp is current
    if (ctr >= threshold) continue;
    if (per.in_flight[i] != 0) continue;
    if (best < 0 || ctr > best_ctr ||
        (ctr == best_ctr && static_cast<std::int64_t>(i) < best)) {
      best = static_cast<std::int64_t>(i);
      best_ctr = ctr;
    }
  }
  if (best < 0) {
    // Cold fallback: with no touched candidate below the threshold the
    // reference scan settles on the lowest untouched (counter 0) index on
    // H with nothing in flight. This walks H's membership list —
    // O(indices mapped to H), the one remaining super-working-set scan,
    // and it only runs in windows that actually move a cold index.
    for (const RegIndex i : per.members[static_cast<PipelineId>(hi)]) {
      if (per.stamp[i] == per.epoch) continue; // touched: handled above
      if (per.in_flight[i] != 0) continue;
      if (best < 0 || static_cast<std::int64_t>(i) < best) {
        best = static_cast<std::int64_t>(i);
      }
    }
  }
  if (best < 0) return 0;
  move_index(per, static_cast<RegIndex>(best), static_cast<PipelineId>(lo));
  return 1;
}

std::size_t ShardedState::rebalance_lpt(RegId reg) {
  // Ideal baseline: longest-processing-time greedy re-shard — sort indexes
  // by access count and place each on the least-loaded pipeline. Indexes
  // with packets in flight stay put (they seed the initial loads), and
  // indexes with zero recent accesses stay put too: re-homing them carries
  // no load now but would herd all cold state onto one pipeline, making
  // the *next* window's accesses collide there. Untouched indices are
  // exactly the zero-access ones and contribute zero seed load, so the
  // whole pass runs off the touched list.
  auto& per = regs_[reg];
  std::vector<std::uint64_t> load(k_, 0);
  scratch_.clear();
  for (const RegIndex i : per.touched) {
    if (per.in_flight[i] != 0) {
      load[per.map[i]] += per.access[i];
    } else {
      scratch_.push_back(i);
    }
  }
  // (counter desc, index asc) is a total order, so sorting the touched
  // subset yields the same sequence the reference gets from sorting an
  // ascending-index candidate list.
  std::sort(scratch_.begin(), scratch_.end(),
            [&](RegIndex a, RegIndex b) {
              if (per.access[a] != per.access[b]) {
                return per.access[a] > per.access[b];
              }
              return a < b;
            });
  std::size_t moves = 0;
  for (const RegIndex i : scratch_) {
    PipelineId target = pin_;
    std::uint64_t best = ~std::uint64_t{0};
    for (PipelineId p = 0; p < k_; ++p) {
      if (alive_[p] && load[p] < best) {
        target = p;
        best = load[p];
      }
    }
    load[target] += per.access[i];
    if (per.map[i] != target) {
      move_index(per, i, target);
      ++moves;
    }
  }
  return moves;
}

// ---------------------------------------------------------------------------
// Full-scan reference rebalance (the pre-incremental implementation,
// reading counters through the epoch stamps). Decision-for-decision equal
// to the incremental path — enforced by the equivalence property suite.
// ---------------------------------------------------------------------------

std::size_t ShardedState::rebalance_reference() {
  if (policy_ == ShardingPolicy::kStaticRandom ||
      policy_ == ShardingPolicy::kSinglePipeline || k_ == 1) {
    std::uint64_t touched = 0;
    for (auto& per : regs_) {
      touched += per.touched.size();
      end_window(per);
    }
    finish_rebalance(0, touched);
    return 0;
  }
  std::size_t moves = 0;
  std::uint64_t touched = 0;
  for (RegId r = 0; r < regs_.size(); ++r) {
    if (!shardable_[r]) continue;
    moves += policy_ == ShardingPolicy::kIdealLpt
                 ? rebalance_lpt_reference(r)
                 : rebalance_one_reference(r);
    touched += regs_[r].touched.size();
    end_window(regs_[r]);
  }
  finish_rebalance(moves, touched);
  return moves;
}

std::size_t ShardedState::rebalance_one_reference(RegId reg) {
  auto& per = regs_[reg];
  std::vector<std::uint64_t> load(k_, 0);
  for (RegIndex i = 0; i < per.map.size(); ++i) {
    load[per.map[i]] += eff_access(per, i);
  }
  std::int64_t hi = -1, lo = -1;
  for (PipelineId p = 0; p < k_; ++p) {
    if (!alive_[p]) continue;
    if (hi < 0 || load[p] > load[hi]) hi = p;
    if (lo < 0 || load[p] < load[lo]) lo = p;
  }
  if (hi < 0 || hi == lo || load[hi] == load[lo]) return 0;
  const std::uint64_t threshold = (load[hi] - load[lo]) / 2;

  // Candidates in decreasing counter order (skipping in-flight indexes,
  // per the §3.4 safety rule).
  std::int64_t best = -1;
  std::uint64_t best_ctr = 0;
  for (std::size_t i = 0; i < per.map.size(); ++i) {
    if (per.map[i] != static_cast<PipelineId>(hi)) continue;
    const std::uint32_t ctr = eff_access(per, static_cast<RegIndex>(i));
    if (ctr >= threshold) continue;
    if (per.in_flight[i] != 0) continue;
    if (best < 0 || ctr > best_ctr) {
      best = static_cast<std::int64_t>(i);
      best_ctr = ctr;
    }
  }
  if (best < 0) return 0;
  move_index(per, static_cast<RegIndex>(best), static_cast<PipelineId>(lo));
  return 1;
}

std::size_t ShardedState::rebalance_lpt_reference(RegId reg) {
  auto& per = regs_[reg];
  std::vector<std::uint64_t> load(k_, 0);
  std::vector<std::size_t> movable;
  movable.reserve(per.map.size());
  for (std::size_t i = 0; i < per.map.size(); ++i) {
    const std::uint32_t ctr = eff_access(per, static_cast<RegIndex>(i));
    if (per.in_flight[i] != 0 || ctr == 0) {
      load[per.map[i]] += ctr;
    } else {
      movable.push_back(i);
    }
  }
  std::sort(movable.begin(), movable.end(), [&](std::size_t a, std::size_t b) {
    if (per.access[a] != per.access[b]) return per.access[a] > per.access[b];
    return a < b;
  });
  std::size_t moves = 0;
  for (const std::size_t i : movable) {
    PipelineId target = pin_;
    std::uint64_t best = ~std::uint64_t{0};
    for (PipelineId p = 0; p < k_; ++p) {
      if (alive_[p] && load[p] < best) {
        target = p;
        best = load[p];
      }
    }
    load[target] += per.access[i];
    if (per.map[i] != target) {
      move_index(per, static_cast<RegIndex>(i), target);
      ++moves;
    }
  }
  return moves;
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

void ShardedState::save(ByteWriter& w) const {
  w.u64(values_.size());
  for (const auto& vals : values_) {
    w.u64(vals.size());
    for (const Value v : vals) w.i64(v);
  }
  w.u32(pin_);
  for (std::uint32_t p = 0; p < k_; ++p) w.boolean(alive_[p]);
  w.u64(total_moves_);
  w.boolean(window_dirty_);
  for (const PerReg& per : regs_) {
    w.u64(per.map.size());
    for (const PipelineId p : per.map) w.u32(p);
    for (const std::uint32_t a : per.access) w.u32(a);
    for (const std::uint32_t s : per.stamp) w.u32(s);
    for (const std::uint32_t f : per.in_flight) w.u32(f);
    w.u64(per.touched.size());
    for (const RegIndex i : per.touched) w.u32(i);
    for (const auto& lane : per.members) {
      w.u64(lane.size());
      for (const RegIndex i : lane) w.u32(i);
    }
    for (const std::uint32_t p : per.pos) w.u32(p);
    for (const std::uint64_t l : per.lane_load) w.u64(l);
    w.u32(per.epoch);
  }
}

void ShardedState::load(ByteReader& r) {
  if (r.count(8) != values_.size()) {
    throw Error("checkpoint: register count mismatch");
  }
  for (auto& vals : values_) {
    if (r.count(8) != vals.size()) {
      throw Error("checkpoint: register size mismatch");
    }
    for (Value& v : vals) v = r.i64();
  }
  pin_ = r.u32();
  if (pin_ >= k_) throw Error("checkpoint: pin pipeline out of range");
  for (std::uint32_t p = 0; p < k_; ++p) alive_[p] = r.boolean();
  total_moves_ = r.u64();
  window_dirty_ = r.boolean();
  for (PerReg& per : regs_) {
    if (r.count(4) != per.map.size()) {
      throw Error("checkpoint: shard map size mismatch");
    }
    for (PipelineId& p : per.map) {
      p = r.u32();
      if (p >= k_) throw Error("checkpoint: shard map pipeline out of range");
    }
    for (std::uint32_t& a : per.access) a = r.u32();
    for (std::uint32_t& s : per.stamp) s = r.u32();
    for (std::uint32_t& f : per.in_flight) f = r.u32();
    per.touched.resize(static_cast<std::size_t>(r.count(4)));
    for (RegIndex& i : per.touched) i = r.u32();
    for (auto& lane : per.members) {
      lane.resize(static_cast<std::size_t>(r.count(4)));
      for (RegIndex& i : lane) i = r.u32();
    }
    for (std::uint32_t& p : per.pos) p = r.u32();
    for (std::uint64_t& l : per.lane_load) l = r.u64();
    per.epoch = r.u32();
  }
}

} // namespace mp5
