#include "mp5/shard_map.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "packet/packet.hpp"
#include "telemetry/telemetry.hpp"

namespace mp5 {

ShardedState::ShardedState(const std::vector<ir::RegisterSpec>& specs,
                           const std::vector<bool>& shardable,
                           std::uint32_t pipelines, ShardingPolicy policy,
                           Rng rng)
    : k_(pipelines), policy_(policy), alive_(pipelines, true),
      shardable_(shardable) {
  if (pipelines == 0) throw ConfigError("ShardedState: pipelines must be > 0");
  if (shardable_.size() != specs.size()) {
    throw ConfigError("ShardedState: shardable mask size mismatch");
  }
  for (const auto& spec : specs) {
    std::vector<Value> arr(spec.size, 0);
    for (std::size_t i = 0; i < spec.init.size() && i < spec.size; ++i) {
      arr[i] = spec.init[i];
    }
    if (spec.init.size() == 1) std::fill(arr.begin(), arr.end(), spec.init[0]);
    values_.push_back(std::move(arr));
  }
  for (std::size_t r = 0; r < specs.size(); ++r) {
    PerReg per;
    per.map.assign(specs[r].size, pin_pipeline());
    per.access.assign(specs[r].size, 0);
    per.in_flight.assign(specs[r].size, 0);
    if (shardable_[r] && policy_ != ShardingPolicy::kSinglePipeline) {
      // Initial placement: uniform random spread across pipelines. Every
      // policy starts from the same kind of compile-time placement; the
      // policies differ only in whether/how they rebalance.
      for (auto& p : per.map) {
        p = static_cast<PipelineId>(rng.next_below(k_));
      }
    }
    regs_.push_back(std::move(per));
  }
}

Value ShardedState::read(RegId reg, RegIndex index) {
  return values_[reg][index];
}

void ShardedState::write(RegId reg, RegIndex index, Value v) {
  values_[reg][index] = v;
}

PipelineId ShardedState::pipeline_of(RegId reg, RegIndex index) const {
  if (!shardable_[reg] || policy_ == ShardingPolicy::kSinglePipeline) {
    return pin_pipeline();
  }
  if (index == kUnresolvedIndex) return pin_pipeline();
  return regs_[reg].map[index];
}

void ShardedState::set_telemetry(telemetry::Telemetry& sink) {
  t_rebalance_runs_ = &sink.counter("shard.rebalance_runs");
  t_rebalance_moves_ = &sink.counter("shard.rebalance_moves");
  t_fault_rehomed_ = &sink.counter("shard.fault_rehomed_indices");
  t_accesses_ = &sink.counter("shard.state_accesses");
}

void ShardedState::note_resolved(RegId reg, RegIndex index) {
  if (index == kUnresolvedIndex) return;
  auto& per = regs_[reg];
  ++per.access[index];
  ++per.in_flight[index];
  MP5_TELEM_INC(t_accesses_);
}

void ShardedState::note_completed(RegId reg, RegIndex index) {
  if (index == kUnresolvedIndex) return;
  auto& per = regs_[reg];
  if (per.in_flight[index] == 0) {
    throw Error("ShardedState: in-flight counter underflow");
  }
  --per.in_flight[index];
}

std::uint32_t ShardedState::alive_count() const {
  return static_cast<std::uint32_t>(
      std::count(alive_.begin(), alive_.end(), true));
}

std::size_t ShardedState::fail_pipeline(PipelineId pipeline) {
  if (pipeline >= k_) {
    throw ConfigError("ShardedState::fail_pipeline: pipeline out of range");
  }
  if (!alive_[pipeline]) {
    throw Error("ShardedState::fail_pipeline: pipeline already dead");
  }
  alive_[pipeline] = false;
  if (alive_count() == 0) {
    throw Error("ShardedState::fail_pipeline: no surviving pipeline");
  }
  if (pin_ == pipeline) {
    for (PipelineId p = 0; p < k_; ++p) {
      if (alive_[p]) {
        pin_ = p;
        break;
      }
    }
  }
  std::size_t moved = 0;
  for (RegId r = 0; r < regs_.size(); ++r) {
    // Pinned arrays and the single-pipeline policy route through pin_,
    // which moved above; only mapped indices need re-homing.
    if (!shardable_[r] || policy_ == ShardingPolicy::kSinglePipeline) {
      continue;
    }
    auto& per = regs_[r];
    std::vector<std::uint64_t> load(k_, 0);
    std::vector<std::uint64_t> count(k_, 0);
    for (std::size_t i = 0; i < per.map.size(); ++i) {
      if (alive_[per.map[i]]) {
        load[per.map[i]] += per.access[i];
        ++count[per.map[i]];
      }
    }
    for (std::size_t i = 0; i < per.map.size(); ++i) {
      if (per.map[i] != pipeline) continue;
      if (per.in_flight[i] != 0) {
        throw Error("ShardedState::fail_pipeline: index has packets in "
                    "flight (drain the lane before remapping)");
      }
      // Least-loaded survivor by windowed access count, ties broken by
      // mapped-index count: the access counters are often all zero here
      // (they reset every remap period), and without the tie-break every
      // re-homed index would land on the first alive lane, turning one
      // survivor into a hotspot.
      PipelineId target = pin_;
      std::uint64_t best_load = ~std::uint64_t{0};
      std::uint64_t best_count = ~std::uint64_t{0};
      for (PipelineId p = 0; p < k_; ++p) {
        if (!alive_[p]) continue;
        if (load[p] < best_load ||
            (load[p] == best_load && count[p] < best_count)) {
          target = p;
          best_load = load[p];
          best_count = count[p];
        }
      }
      load[target] += per.access[i];
      ++count[target];
      per.map[i] = target;
      ++moved;
    }
  }
  total_moves_ += moved;
  MP5_TELEM_ADD(t_fault_rehomed_, moved);
  return moved;
}

void ShardedState::recover_pipeline(PipelineId pipeline) {
  if (pipeline >= k_) {
    throw ConfigError("ShardedState::recover_pipeline: pipeline out of range");
  }
  if (alive_[pipeline]) {
    throw Error("ShardedState::recover_pipeline: pipeline is not dead");
  }
  alive_[pipeline] = true;
}

std::vector<std::uint64_t> ShardedState::pipeline_load(RegId reg) const {
  std::vector<std::uint64_t> load(k_, 0);
  const auto& per = regs_[reg];
  for (std::size_t i = 0; i < per.map.size(); ++i) {
    load[per.map[i]] += per.access[i];
  }
  return load;
}

std::size_t ShardedState::rebalance() {
  if (policy_ == ShardingPolicy::kStaticRandom ||
      policy_ == ShardingPolicy::kSinglePipeline || k_ == 1) {
    // Static policies never move state, but the access counters still
    // reset each period (they are windowed statistics).
    for (auto& per : regs_) {
      std::fill(per.access.begin(), per.access.end(), 0);
    }
    return 0;
  }
  std::size_t moves = 0;
  for (RegId r = 0; r < regs_.size(); ++r) {
    if (!shardable_[r]) continue;
    moves += policy_ == ShardingPolicy::kIdealLpt ? rebalance_lpt(r)
                                                  : rebalance_one(r);
    auto& per = regs_[r];
    std::fill(per.access.begin(), per.access.end(), 0);
  }
  total_moves_ += moves;
  MP5_TELEM_INC(t_rebalance_runs_);
  MP5_TELEM_ADD(t_rebalance_moves_, moves);
  return moves;
}

std::size_t ShardedState::rebalance_one(RegId reg) {
  // Figure 6: find pipelines H (max aggregate counter) and L (min); move
  // the index mapped to H with the largest counter value < (cmax-cmin)/2,
  // provided its in-flight counter is zero.
  auto& per = regs_[reg];
  const auto load = pipeline_load(reg);
  // Consider only surviving lanes: a dead lane holds no active indices
  // and must never become a move target.
  std::int64_t hi = -1, lo = -1;
  for (PipelineId p = 0; p < k_; ++p) {
    if (!alive_[p]) continue;
    if (hi < 0 || load[p] > load[hi]) hi = p;
    if (lo < 0 || load[p] < load[lo]) lo = p;
  }
  if (hi < 0 || hi == lo || load[hi] == load[lo]) return 0;
  const std::uint64_t threshold = (load[hi] - load[lo]) / 2;

  // Candidates in decreasing counter order (skipping in-flight indexes,
  // per the §3.4 safety rule).
  std::int64_t best = -1;
  std::uint64_t best_ctr = 0;
  for (std::size_t i = 0; i < per.map.size(); ++i) {
    if (per.map[i] != static_cast<PipelineId>(hi)) continue;
    if (per.access[i] >= threshold) continue;
    if (per.in_flight[i] != 0) continue;
    if (best < 0 || per.access[i] > best_ctr) {
      best = static_cast<std::int64_t>(i);
      best_ctr = per.access[i];
    }
  }
  if (best < 0) return 0;
  per.map[static_cast<std::size_t>(best)] = static_cast<PipelineId>(lo);
  return 1;
}

std::size_t ShardedState::rebalance_lpt(RegId reg) {
  // Ideal baseline: longest-processing-time greedy re-shard — sort indexes
  // by access count and place each on the least-loaded pipeline. Indexes
  // with packets in flight stay put (they seed the initial loads).
  auto& per = regs_[reg];
  std::vector<std::uint64_t> load(k_, 0);
  std::vector<std::size_t> movable;
  movable.reserve(per.map.size());
  for (std::size_t i = 0; i < per.map.size(); ++i) {
    // Indexes with zero recent accesses stay put: re-homing them carries
    // no load now but would herd all cold state onto one pipeline, making
    // the *next* window's accesses collide there.
    if (per.in_flight[i] != 0 || per.access[i] == 0) {
      load[per.map[i]] += per.access[i];
    } else {
      movable.push_back(i);
    }
  }
  std::sort(movable.begin(), movable.end(), [&](std::size_t a, std::size_t b) {
    if (per.access[a] != per.access[b]) return per.access[a] > per.access[b];
    return a < b;
  });
  std::size_t moves = 0;
  for (const std::size_t i : movable) {
    PipelineId target = pin_;
    std::uint64_t best = ~std::uint64_t{0};
    for (PipelineId p = 0; p < k_; ++p) {
      if (alive_[p] && load[p] < best) {
        target = p;
        best = load[p];
      }
    }
    load[target] += per.access[i];
    if (per.map[i] != target) {
      per.map[i] = target;
      ++moves;
    }
  }
  return moves;
}

} // namespace mp5
