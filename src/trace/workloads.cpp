#include "trace/workloads.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace mp5 {

Trace make_synthetic_trace(const SyntheticConfig& config) {
  if (config.stateful_stages == 0 && config.packets == 0) return {};
  Rng rng(config.seed);
  Rng perm_rng = rng.fork();

  // One sampler per stateful stage so per-stage access patterns are
  // independent (each stage has its own register array, §4.3.1).
  std::vector<TwoClassSkewSampler> skew;
  std::vector<ZipfSampler> zipf;
  for (std::uint32_t s = 0; s < config.stateful_stages; ++s) {
    if (config.pattern == AccessPattern::kSkewed) {
      skew.emplace_back(config.reg_size, perm_rng);
    } else if (config.pattern == AccessPattern::kZipf) {
      zipf.emplace_back(config.reg_size, config.zipf_exponent);
    }
  }

  auto sample_index = [&](std::uint32_t stage) -> std::uint64_t {
    switch (config.pattern) {
      case AccessPattern::kUniform:
        return rng.next_below(config.reg_size);
      case AccessPattern::kSkewed:
        return skew[stage].sample(rng);
      case AccessPattern::kZipf:
        return zipf[stage].sample(rng);
    }
    return 0;
  };

  // Optional flow churn (see header comment).
  struct BurstFlow {
    std::uint64_t id;
    std::vector<Value> indexes;
    std::uint64_t remaining;
  };
  std::vector<BurstFlow> flows;
  std::uint64_t next_flow_id = 1;
  auto spawn_flow = [&] {
    BurstFlow flow;
    flow.id = next_flow_id++;
    flow.indexes.reserve(config.stateful_stages);
    for (std::uint32_t s = 0; s < config.stateful_stages; ++s) {
      flow.indexes.push_back(static_cast<Value>(sample_index(s)));
    }
    flow.remaining = 1 + static_cast<std::uint64_t>(
                             rng.next_exponential(config.mean_flow_packets));
    return flow;
  };
  for (std::uint32_t f = 0; f < config.active_flows; ++f) {
    flows.push_back(spawn_flow());
  }

  Trace trace;
  trace.reserve(config.packets);
  LineRateClock clock(config.pipelines, config.load);
  for (std::uint64_t n = 0; n < config.packets; ++n) {
    TraceItem item;
    item.arrival_time = clock.next(config.packet_bytes);
    item.port = static_cast<std::uint32_t>(n % config.ports);
    item.size_bytes = config.packet_bytes;
    item.fields.reserve(config.stateful_stages + 1);
    if (config.active_flows > 0) {
      auto& flow = flows[rng.next_below(flows.size())];
      item.fields = flow.indexes;
      item.flow = flow.id;
      if (--flow.remaining == 0) flow = spawn_flow();
    } else {
      for (std::uint32_t s = 0; s < config.stateful_stages; ++s) {
        item.fields.push_back(static_cast<Value>(sample_index(s)));
      }
      item.flow = n;
    }
    item.fields.push_back(static_cast<Value>(rng.next_below(1 << 16))); // v
    trace.push_back(std::move(item));
  }
  return trace;
}

std::uint64_t web_search_flow_bytes(Rng& rng) {
  // Piecewise-linear CDF in log-size space, shaped after the DCTCP web
  // search workload: ~50% of flows under ~100 KB, a heavy tail to ~30 MB.
  struct Point {
    double cdf;
    double kb;
  };
  static constexpr Point kCdf[] = {
      {0.00, 1.0},   {0.15, 6.0},    {0.20, 13.0},   {0.30, 19.0},
      {0.40, 33.0},  {0.53, 53.0},   {0.60, 133.0},  {0.70, 667.0},
      {0.80, 1333.0},{0.90, 6667.0}, {0.95, 20000.0},{1.00, 30000.0},
  };
  const double u = rng.next_double();
  for (std::size_t i = 1; i < std::size(kCdf); ++i) {
    if (u <= kCdf[i].cdf) {
      const double span = kCdf[i].cdf - kCdf[i - 1].cdf;
      const double frac = span <= 0 ? 0.0 : (u - kCdf[i - 1].cdf) / span;
      const double kb =
          kCdf[i - 1].kb + frac * (kCdf[i].kb - kCdf[i - 1].kb);
      return static_cast<std::uint64_t>(kb * 1024.0);
    }
  }
  return static_cast<std::uint64_t>(kCdf[std::size(kCdf) - 1].kb * 1024.0);
}

Trace make_flow_trace(const FlowWorkloadConfig& config,
                      const FieldFiller& filler) {
  if (!filler) throw ConfigError("make_flow_trace: filler is required");
  Rng rng(config.seed);

  struct ActiveFlow {
    std::uint64_t id;
    std::uint64_t remaining_bytes;
    std::uint64_t packets_sent = 0;
  };
  std::deque<ActiveFlow> active;
  std::uint64_t next_flow_id = 1;
  auto spawn = [&] {
    active.push_back(ActiveFlow{next_flow_id++, web_search_flow_bytes(rng)});
  };
  for (std::uint32_t i = 0; i < std::max(1u, config.active_flows); ++i) {
    spawn();
  }

  Trace trace;
  trace.reserve(config.packets);
  LineRateClock clock(config.pipelines, config.load);
  while (trace.size() < config.packets) {
    // Round-robin service over the active flow set models fair sharing of
    // the ingress links; long flows stay active for many rounds, which is
    // what produces the heavy-tailed per-state access skew.
    ActiveFlow flow = active.front();
    active.pop_front();

    const bool small = rng.chance(config.small_fraction);
    std::uint32_t size = small ? config.small_bytes : config.large_bytes;
    if (flow.remaining_bytes < size) {
      size = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(flow.remaining_bytes, 64));
    }

    FlowPacketInfo info;
    info.flow = flow.id;
    info.packet_in_flow = flow.packets_sent;
    info.size_bytes = size;
    info.arrival_time = clock.next(size);

    TraceItem item;
    item.arrival_time = info.arrival_time;
    item.port = static_cast<std::uint32_t>(flow.id % config.ports);
    item.size_bytes = size;
    item.flow = flow.id;
    item.fields = filler(info);
    trace.push_back(std::move(item));

    flow.packets_sent++;
    flow.remaining_bytes -= std::min<std::uint64_t>(flow.remaining_bytes, size);
    if (flow.remaining_bytes == 0) {
      spawn();
    } else {
      active.push_back(flow);
    }
  }
  return trace;
}

} // namespace mp5
