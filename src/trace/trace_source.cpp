#include "trace/trace_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "trace/trace_io.hpp"

namespace mp5 {

void VectorTraceSource::skip_to(std::uint64_t n) {
  if (n > trace_->size()) {
    throw Error("trace skip_to(" + std::to_string(n) + ") past end (" +
                std::to_string(trace_->size()) + " items)");
  }
  pos_ = n;
}

// -- MappedFile ------------------------------------------------------------

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error("cannot open trace file '" + path +
                "': " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw Error("cannot stat trace file '" + path +
                "': " + std::strerror(err));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      throw Error("cannot mmap trace file '" + path +
                  "': " + std::strerror(err));
    }
    data_ = static_cast<const char*>(p);
  }
  ::close(fd);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

// -- CsvFileTraceSource ----------------------------------------------------

CsvFileTraceSource::CsvFileTraceSource(const std::string& path)
    : path_(path), map_(std::make_unique<MappedFile>(path)) {
  parse_next();
}

const TraceItem* CsvFileTraceSource::peek() {
  return have_current_ ? &current_ : nullptr;
}

void CsvFileTraceSource::advance() {
  ++consumed_;
  parse_next();
}

void CsvFileTraceSource::skip_to(std::uint64_t n) {
  if (n < consumed_) {
    offset_ = 0;
    lineno_ = 0;
    consumed_ = 0;
    any_parsed_ = false;
    parse_next();
  }
  while (consumed_ < n) {
    if (!have_current_) {
      throw Error("trace skip_to(" + std::to_string(n) +
                  ") past end of '" + path_ + "'");
    }
    advance();
  }
}

void CsvFileTraceSource::parse_next() {
  const char* base = map_->data();
  const std::size_t size = map_->size();
  while (offset_ < size) {
    std::size_t end = offset_;
    while (end < size && base[end] != '\n') ++end;
    std::string line(base + offset_, end - offset_);
    offset_ = (end < size) ? end + 1 : size;
    ++lineno_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> cells;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      if (comma == std::string::npos) {
        cells.push_back(line.substr(start));
        break;
      }
      cells.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
    if (cells.size() < 4) {
      throw Error("trace csv line " + std::to_string(lineno_) +
                  ": expected at least 4 columns");
    }
    TraceItem item;
    try {
      item.arrival_time = std::stod(cells[0]);
      item.port = static_cast<std::uint32_t>(std::stoul(cells[1]));
      item.size_bytes = static_cast<std::uint32_t>(std::stoul(cells[2]));
      item.flow = std::stoull(cells[3]);
      for (std::size_t i = 4; i < cells.size(); ++i) {
        item.fields.push_back(static_cast<Value>(std::stoll(cells[i])));
      }
    } catch (const std::exception&) {
      throw Error("trace csv line " + std::to_string(lineno_) +
                  ": malformed number");
    }
    // A streaming reader cannot sort after the fact the way
    // load_trace_csv does, so admission order is an input contract.
    if (any_parsed_ &&
        (item.arrival_time < prev_time_ ||
         (item.arrival_time == prev_time_ && item.port < prev_port_))) {
      throw Error("trace csv line " + std::to_string(lineno_) +
                  ": out of admission order (streaming input must be "
                  "sorted by arrival_time, then port)");
    }
    prev_time_ = item.arrival_time;
    prev_port_ = item.port;
    any_parsed_ = true;
    current_ = std::move(item);
    have_current_ = true;
    return;
  }
  have_current_ = false;
}

// -- Binary trace format ---------------------------------------------------

namespace {

constexpr std::size_t kBinMagicBytes = 8;
constexpr std::uint32_t kBinVersion = 1;
constexpr std::size_t kBinHeaderBytes = kBinMagicBytes + 4 + 4 + 8;
constexpr std::size_t kBinFixedRecordBytes = 8 + 4 + 4 + 8;

} // namespace

BinaryFileTraceSource::BinaryFileTraceSource(const std::string& path)
    : path_(path), map_(std::make_unique<MappedFile>(path)) {
  if (map_->size() < kBinHeaderBytes ||
      std::memcmp(map_->data(), kTraceBinMagic.data(), kBinMagicBytes) != 0) {
    throw Error("'" + path + "' is not a binary trace file (bad magic)");
  }
  ByteReader r(std::string_view(map_->data() + kBinMagicBytes,
                                kBinHeaderBytes - kBinMagicBytes));
  const std::uint32_t version = r.u32();
  if (version != kBinVersion) {
    throw Error("binary trace '" + path + "': unsupported version " +
                std::to_string(version));
  }
  field_count_ = r.u32();
  items_ = r.u64();
  if (field_count_ > (1u << 20)) {
    throw Error("binary trace '" + path + "': implausible field count " +
                std::to_string(field_count_));
  }
  record_bytes_ = kBinFixedRecordBytes + 8 * std::size_t{field_count_};
  header_bytes_ = kBinHeaderBytes;
  const std::size_t expected = header_bytes_ + items_ * record_bytes_;
  if (map_->size() != expected) {
    throw Error("binary trace '" + path + "': size " +
                std::to_string(map_->size()) + " != expected " +
                std::to_string(expected) + " (truncated or corrupt)");
  }
  current_.fields.resize(field_count_);
  load_current();
}

const TraceItem* BinaryFileTraceSource::peek() {
  return have_current_ ? &current_ : nullptr;
}

void BinaryFileTraceSource::advance() {
  ++consumed_;
  load_current();
}

void BinaryFileTraceSource::skip_to(std::uint64_t n) {
  if (n > items_) {
    throw Error("trace skip_to(" + std::to_string(n) + ") past end (" +
                std::to_string(items_) + " items)");
  }
  consumed_ = n;
  load_current();
}

void BinaryFileTraceSource::load_current() {
  if (consumed_ >= items_) {
    have_current_ = false;
    return;
  }
  ByteReader r(std::string_view(
      map_->data() + header_bytes_ + consumed_ * record_bytes_,
      record_bytes_));
  current_.arrival_time = r.f64();
  current_.port = r.u32();
  current_.size_bytes = r.u32();
  current_.flow = r.u64();
  for (std::uint32_t f = 0; f < field_count_; ++f) {
    current_.fields[f] = r.i64();
  }
  have_current_ = true;
}

void save_trace_bin(const Trace& trace, const std::string& path) {
  std::size_t field_count = 0;
  for (const auto& item : trace) {
    field_count = std::max(field_count, item.fields.size());
  }
  ByteWriter w;
  w.bytes(kTraceBinMagic.data(), kBinMagicBytes);
  w.u32(kBinVersion);
  w.u32(static_cast<std::uint32_t>(field_count));
  w.u64(trace.size());
  for (const auto& item : trace) {
    w.f64(item.arrival_time);
    w.u32(item.port);
    w.u32(item.size_bytes);
    w.u64(item.flow);
    for (std::size_t f = 0; f < field_count; ++f) {
      w.i64(f < item.fields.size() ? item.fields[f] : 0);
    }
  }
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (fp == nullptr) {
    throw Error("cannot write binary trace '" + path + "'");
  }
  const std::string& buf = w.buffer();
  const bool ok = std::fwrite(buf.data(), 1, buf.size(), fp) == buf.size();
  if (std::fclose(fp) != 0 || !ok) {
    throw Error("short write to binary trace '" + path + "'");
  }
}

Trace load_trace_bin(const std::string& path) {
  BinaryFileTraceSource source(path);
  Trace trace;
  if (auto n = source.size()) trace.reserve(*n);
  while (const TraceItem* item = source.peek()) {
    trace.push_back(*item);
    source.advance();
  }
  return trace;
}

// -- SyntheticTraceSource --------------------------------------------------

SyntheticTraceSource::SyntheticTraceSource(const SyntheticSpec& spec)
    : spec_(spec) {
  if (spec_.pipelines == 0) {
    throw Error("SyntheticTraceSource: pipelines must be > 0");
  }
  if (!(spec_.load > 0.0)) {
    throw Error("SyntheticTraceSource: load must be > 0");
  }
  current_.fields.resize(spec_.field_count);
  generate(0);
}

const TraceItem* SyntheticTraceSource::peek() {
  return have_current_ ? &current_ : nullptr;
}

void SyntheticTraceSource::advance() {
  ++pos_;
  generate(pos_);
}

void SyntheticTraceSource::skip_to(std::uint64_t n) {
  if (n > spec_.packets) {
    throw Error("trace skip_to(" + std::to_string(n) + ") past end (" +
                std::to_string(spec_.packets) + " items)");
  }
  pos_ = n;
  generate(pos_);
}

void SyntheticTraceSource::generate(std::uint64_t i) {
  if (i >= spec_.packets) {
    have_current_ = false;
    return;
  }
  // Item i depends only on (seed, i): reseed a fresh stream per item so
  // skip_to() needs no replay. Fixed 64 B packets at the line-rate clock
  // give arrival_time = i / (pipelines * load).
  Rng rng(spec_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  current_.arrival_time =
      static_cast<double>(i) / (spec_.pipelines * spec_.load);
  current_.port = static_cast<std::uint32_t>(
      rng.next_below(std::uint64_t{spec_.pipelines} * 4));
  current_.size_bytes = 64;
  current_.flow = rng.next_below(std::max<std::uint64_t>(1, spec_.flows));
  const std::uint64_t bound =
      spec_.field_bound > 0 ? static_cast<std::uint64_t>(spec_.field_bound)
                            : 1;
  for (std::uint32_t f = 0; f < spec_.field_count; ++f) {
    current_.fields[f] = static_cast<Value>(rng.next_below(bound));
  }
  have_current_ = true;
}

std::unique_ptr<TraceSource> open_trace_source(const std::string& path) {
  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  if (ends_with(".csv")) {
    return std::make_unique<CsvFileTraceSource>(path);
  }
  return std::make_unique<BinaryFileTraceSource>(path);
}

} // namespace mp5
