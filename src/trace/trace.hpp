// Input packet streams (§2.2.1): I = { I_i(p_i, t_i) } — each packet has
// an arrival time and an arrival port. Packets enter the pipeline in
// arrival order; ties are broken by smaller port id (the paper's rule).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mp5 {

struct TraceItem {
  /// Arrival time in pipeline clock cycles (fractional: at line rate with
  /// minimum-size packets, k packets arrive per cycle on a k-pipeline
  /// switch).
  double arrival_time = 0.0;
  std::uint32_t port = 0;
  std::uint32_t size_bytes = 64;
  std::uint64_t flow = 0;
  /// Values of the program's declared packet fields, in declaration order.
  std::vector<Value> fields;
};

using Trace = std::vector<TraceItem>;

/// Sort by (arrival_time, port): the switch admission order.
void sort_by_arrival(Trace& trace);

/// Flatten to per-packet header vectors for the single-pipeline reference
/// switch: declared fields first (their slots are 0..F-1 by construction),
/// zero-padded to `num_slots`.
std::vector<std::vector<Value>> to_header_batch(const Trace& trace,
                                                std::size_t num_slots);

/// Line-rate arrival clock: a k-pipeline switch's aggregate capacity is k
/// minimum-size (64 B) packets per cycle, so a packet of S bytes advances
/// time by S / (64 * k * load) cycles. load > 1 oversubscribes.
class LineRateClock {
public:
  LineRateClock(std::uint32_t pipelines, double load)
      : per_byte_(1.0 / (64.0 * pipelines * load)) {}

  /// Returns the arrival time for a packet of `size_bytes`, then advances.
  double next(std::uint32_t size_bytes) {
    const double t = now_;
    now_ += size_bytes * per_byte_;
    return t;
  }

private:
  double per_byte_;
  double now_ = 0.0;
};

} // namespace mp5
