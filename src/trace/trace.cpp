#include "trace/trace.hpp"

#include <algorithm>

namespace mp5 {

void sort_by_arrival(Trace& trace) {
  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceItem& a, const TraceItem& b) {
                     if (a.arrival_time != b.arrival_time) {
                       return a.arrival_time < b.arrival_time;
                     }
                     return a.port < b.port;
                   });
}

std::vector<std::vector<Value>> to_header_batch(const Trace& trace,
                                                std::size_t num_slots) {
  std::vector<std::vector<Value>> out;
  out.reserve(trace.size());
  for (const auto& item : trace) {
    std::vector<Value> headers(num_slots, 0);
    for (std::size_t i = 0; i < item.fields.size() && i < num_slots; ++i) {
      headers[i] = item.fields[i];
    }
    out.push_back(std::move(headers));
  }
  return out;
}

} // namespace mp5
