// Streaming packet sources for soak-scale runs (ISSUE 6).
//
// The simulator historically consumed a fully materialized
// std::vector<TraceItem>, capping runs at bench-sized workloads.
// TraceSource is the incremental replacement: the simulator peeks at the
// next packet and advances one item at a time, so a 10^9-packet run
// holds O(1) trace state in memory. Implementations:
//
//   VectorTraceSource     adapter over an in-memory Trace (back compat)
//   CsvFileTraceSource    mmap'd .trace.csv, parsed on demand
//   BinaryFileTraceSource mmap'd compact binary (save_trace_bin),
//                         O(1) random repositioning
//   SyntheticTraceSource  generator-driven: item i is a pure function of
//                         (spec, i), so skip_to() is O(1) — the backbone
//                         of billion-packet soak runs
//
// skip_to() exists for checkpoint restore: a resumed simulator
// repositions the source at the number of packets already admitted.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace mp5 {

class TraceSource {
public:
  virtual ~TraceSource() = default;

  /// The next not-yet-consumed item, or nullptr at end of stream. The
  /// pointer stays valid until the next advance()/skip_to() call.
  virtual const TraceItem* peek() = 0;

  /// Consume the item peek() returned. Precondition: peek() != nullptr.
  virtual void advance() = 0;

  /// Items consumed so far (== index of the item peek() returns).
  virtual std::uint64_t consumed() const = 0;

  /// Reposition so that consumed() == n. Used on checkpoint restore;
  /// n must not exceed the stream length.
  virtual void skip_to(std::uint64_t n) = 0;

  /// Total item count when cheaply known (used only for capacity
  /// hints, never for control flow).
  virtual std::optional<std::uint64_t> size() const = 0;
};

/// Adapter over an in-memory Trace. Non-owning by default (the
/// Trace& overload of Mp5Simulator::run wraps its argument); the
/// rvalue constructor takes ownership for callers that build a trace
/// just to stream it.
class VectorTraceSource final : public TraceSource {
public:
  explicit VectorTraceSource(const Trace& trace) : trace_(&trace) {}
  explicit VectorTraceSource(Trace&& trace)
      : owned_(std::move(trace)), trace_(&owned_) {}

  const TraceItem* peek() override {
    return pos_ < trace_->size() ? &(*trace_)[pos_] : nullptr;
  }
  void advance() override { ++pos_; }
  std::uint64_t consumed() const override { return pos_; }
  void skip_to(std::uint64_t n) override;
  std::optional<std::uint64_t> size() const override {
    return trace_->size();
  }

private:
  Trace owned_;
  const Trace* trace_;
  std::uint64_t pos_ = 0;
};

/// Read-only mmap of a trace file. Owns the mapping; unmaps on destroy.
class MappedFile {
public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }

private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Streams a .trace.csv file without materializing it. Unlike
/// load_trace_csv (which sorts after loading), a streaming reader cannot
/// sort — the file must already be in admission order (non-decreasing
/// arrival_time, ties in non-decreasing port); violations throw with the
/// offending line number.
class CsvFileTraceSource final : public TraceSource {
public:
  explicit CsvFileTraceSource(const std::string& path);

  const TraceItem* peek() override;
  void advance() override;
  std::uint64_t consumed() const override { return consumed_; }
  void skip_to(std::uint64_t n) override;
  std::optional<std::uint64_t> size() const override { return std::nullopt; }

private:
  void parse_next();

  std::string path_;
  std::unique_ptr<MappedFile> map_;
  std::size_t offset_ = 0;
  std::size_t lineno_ = 0;
  std::uint64_t consumed_ = 0;
  bool have_current_ = false;
  TraceItem current_;
  double prev_time_ = 0.0;
  std::uint32_t prev_port_ = 0;
  bool any_parsed_ = false;
};

/// Streams the compact binary format written by save_trace_bin
/// (fixed-size records → O(1) skip_to, which makes restore from a
/// late checkpoint instant even on a multi-gigabyte trace).
class BinaryFileTraceSource final : public TraceSource {
public:
  explicit BinaryFileTraceSource(const std::string& path);

  const TraceItem* peek() override;
  void advance() override;
  std::uint64_t consumed() const override { return consumed_; }
  void skip_to(std::uint64_t n) override;
  std::optional<std::uint64_t> size() const override { return items_; }

private:
  void load_current();

  std::string path_;
  std::unique_ptr<MappedFile> map_;
  std::uint32_t field_count_ = 0;
  std::uint64_t items_ = 0;
  std::size_t record_bytes_ = 0;
  std::size_t header_bytes_ = 0;
  std::uint64_t consumed_ = 0;
  bool have_current_ = false;
  TraceItem current_;
};

/// Parameters for the deterministic soak-traffic generator. Item i is a
/// pure function of (spec, i): arrival times follow the line-rate clock
/// for fixed 64 B packets and the randomized fields are drawn from an Rng
/// reseeded per item, so repositioning anywhere in a 10^9-packet stream
/// costs O(1).
struct SyntheticSpec {
  std::uint64_t packets = 0;
  std::uint32_t pipelines = 4;
  /// Offered load relative to aggregate line rate (1.0 = full rate).
  double load = 1.0;
  /// Number of declared packet fields to randomize.
  std::uint32_t field_count = 1;
  /// Field values are uniform in [0, field_bound).
  Value field_bound = 1024;
  std::uint64_t flows = 64;
  std::uint64_t seed = 1;
};

class SyntheticTraceSource final : public TraceSource {
public:
  explicit SyntheticTraceSource(const SyntheticSpec& spec);

  const TraceItem* peek() override;
  void advance() override;
  std::uint64_t consumed() const override { return pos_; }
  void skip_to(std::uint64_t n) override;
  std::optional<std::uint64_t> size() const override { return spec_.packets; }

private:
  void generate(std::uint64_t i);

  SyntheticSpec spec_;
  std::uint64_t pos_ = 0;
  bool have_current_ = false;
  TraceItem current_;
};

/// Dispatch on file extension: ".csv"/".trace.csv" → CSV streamer,
/// anything else → binary streamer (which validates its magic).
std::unique_ptr<TraceSource> open_trace_source(const std::string& path);

} // namespace mp5
