// Workload generators for the paper's experiments.
//
// §4.3.1 sensitivity workload: 64-port switch, line-rate 64 B packets,
// one register array per stateful stage, and per-packet state indexes
// drawn from either a uniform pattern or the skewed pattern (95% of
// packets access 30% of states).
//
// §4.4 real-application workload: bimodal packet sizes clustered at 200 B
// and 1400 B, flow sizes from a heavy-tailed web-search-like distribution,
// and per-flow state access (the flow id drives the header fields).
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "trace/trace.hpp"

namespace mp5 {

enum class AccessPattern { kUniform, kSkewed, kZipf };

struct SyntheticConfig {
  std::uint32_t stateful_stages = 4;
  std::size_t reg_size = 512;
  AccessPattern pattern = AccessPattern::kUniform;
  double zipf_exponent = 1.0; // kZipf only
  std::uint32_t pipelines = 4;
  std::uint32_t ports = 64;
  std::uint32_t packet_bytes = 64;
  double load = 1.0; // 1.0 = line rate
  std::uint64_t packets = 20000;
  std::uint64_t seed = 1;
  /// When > 0, packets are emitted by a churning set of `active_flows`
  /// concurrent flows; each flow samples its per-stage indexes once at
  /// birth (from `pattern`) and keeps them for a geometric lifetime of
  /// mean `mean_flow_packets`. This produces the short-time-scale access
  /// skew of real traffic that dynamic state sharding reacts to (§4.3.2):
  /// even a long-run-uniform pattern is locally concentrated. 0 = i.i.d.
  /// per-packet sampling.
  std::uint32_t active_flows = 0;
  double mean_flow_packets = 64.0;
};

/// Trace for the synthetic sensitivity program produced by
/// apps::make_synthetic_source(stages, reg_size): declared fields are
/// [h0..h{stages-1}, v], where h_i is the stage-i register index.
Trace make_synthetic_trace(const SyntheticConfig& config);

struct FlowPacketInfo {
  std::uint64_t flow = 0;
  std::uint64_t packet_in_flow = 0;
  double arrival_time = 0.0;
  std::uint32_t size_bytes = 0;
};

/// Maps a flow packet to the program's declared field values.
using FieldFiller = std::function<std::vector<Value>(const FlowPacketInfo&)>;

struct FlowWorkloadConfig {
  std::uint32_t active_flows = 64; // concurrently active flows
  std::uint32_t pipelines = 4;
  std::uint32_t ports = 64;
  double load = 1.0;
  std::uint64_t packets = 20000;
  std::uint32_t small_bytes = 200;  // bimodal packet sizes (§4.4)
  std::uint32_t large_bytes = 1400;
  double small_fraction = 0.45;
  std::uint64_t seed = 1;
};

/// Heavy-tailed flow-size sample in bytes, following the published web
/// search workload's CDF shape (DCTCP): mostly-small flows with a tail of
/// multi-megabyte flows that carry most of the bytes.
std::uint64_t web_search_flow_bytes(Rng& rng);

/// Packet trace with `active_flows` concurrent flows round-robining on the
/// wire; finished flows are replaced by fresh ones with new flow ids. The
/// FieldFiller turns each packet into program header fields.
Trace make_flow_trace(const FlowWorkloadConfig& config,
                      const FieldFiller& filler);

} // namespace mp5
