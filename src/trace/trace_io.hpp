// CSV (de)serialization of packet traces, so experiments can be replayed
// across runs and tools (the paper's artifact ships trace generators; we
// additionally make every trace storable).
//
// Format: one packet per line,
//   arrival_time,port,size_bytes,flow,field0,field1,...
// Lines starting with '#' are comments. Field counts may vary per line
// (missing declared fields default to 0 at admission).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/trace.hpp"

namespace mp5 {

void save_trace_csv(const Trace& trace, std::ostream& os);
Trace load_trace_csv(std::istream& is);

void save_trace_file(const Trace& trace, const std::string& path);
Trace load_trace_file(const std::string& path);

/// Compact binary trace format for soak-scale inputs: fixed-size records
/// make BinaryFileTraceSource::skip_to O(1). Layout (little-endian):
///   magic "MP5TRCB1" | u32 version=1 | u32 field_count | u64 item_count
///   then item_count records of
///   f64 arrival_time | u32 port | u32 size_bytes | u64 flow
///   | field_count x i64 fields (zero-padded per item)
inline constexpr std::string_view kTraceBinMagic = "MP5TRCB1";

void save_trace_bin(const Trace& trace, const std::string& path);
Trace load_trace_bin(const std::string& path);

} // namespace mp5
