// CSV (de)serialization of packet traces, so experiments can be replayed
// across runs and tools (the paper's artifact ships trace generators; we
// additionally make every trace storable).
//
// Format: one packet per line,
//   arrival_time,port,size_bytes,flow,field0,field1,...
// Lines starting with '#' are comments. Field counts may vary per line
// (missing declared fields default to 0 at admission).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace mp5 {

void save_trace_csv(const Trace& trace, std::ostream& os);
Trace load_trace_csv(std::istream& is);

void save_trace_file(const Trace& trace, const std::string& path);
Trace load_trace_file(const std::string& path);

} // namespace mp5
