#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mp5 {

void save_trace_csv(const Trace& trace, std::ostream& os) {
  os << "# arrival_time,port,size_bytes,flow,fields...\n";
  for (const auto& item : trace) {
    os << item.arrival_time << ',' << item.port << ',' << item.size_bytes
       << ',' << item.flow;
    for (const Value v : item.fields) os << ',' << v;
    os << '\n';
  }
}

Trace load_trace_csv(std::istream& is) {
  Trace trace;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (cells.size() < 4) {
      throw Error("trace csv line " + std::to_string(lineno) +
                  ": expected at least 4 columns");
    }
    try {
      TraceItem item;
      item.arrival_time = std::stod(cells[0]);
      item.port = static_cast<std::uint32_t>(std::stoul(cells[1]));
      item.size_bytes = static_cast<std::uint32_t>(std::stoul(cells[2]));
      item.flow = std::stoull(cells[3]);
      for (std::size_t i = 4; i < cells.size(); ++i) {
        item.fields.push_back(static_cast<Value>(std::stoll(cells[i])));
      }
      trace.push_back(std::move(item));
    } catch (const std::exception&) {
      throw Error("trace csv line " + std::to_string(lineno) +
                  ": malformed number");
    }
  }
  sort_by_arrival(trace);
  return trace;
}

void save_trace_file(const Trace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot write trace file '" + path + "'");
  save_trace_csv(trace, os);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot read trace file '" + path + "'");
  return load_trace_csv(is);
}

} // namespace mp5
