#include "banzai/single_pipeline.hpp"

#include <stdexcept>

namespace mp5::banzai {

void AccessLog::record(RegId reg, RegIndex index, SeqNo seq) {
  auto& vec = order[key(reg, index)];
  // A read-modify-write by one packet is a single logical access.
  if (!vec.empty() && vec.back() == seq) return;
  vec.push_back(seq);
}

void ReferenceSwitch::Observer::on_state_access(RegId reg, RegIndex index,
                                                bool /*is_write*/) {
  if (seen && reg == last_reg && index == last_index) return;
  log->record(reg, index, current_seq);
  last_reg = reg;
  last_index = index;
  seen = true;
}

ReferenceSwitch::ReferenceSwitch(const ir::Pvsm& program)
    : program_(&program), regs_(program.initial_registers()) {}

std::vector<Value> ReferenceSwitch::process(std::vector<Value> headers) {
  headers.resize(program_->num_slots(), 0);
  Observer obs;
  obs.log = &log_;
  obs.current_seq = next_seq_++;
  obs.seen = false;
  ir::AccessObserver* observer = log_accesses_ ? &obs : nullptr;
  for (const auto& stage : program_->stages) {
    ir::exec_stage(stage, headers, regs_, program_->registers, observer);
  }
  return headers;
}

void ReferenceSwitch::restore_registers(std::vector<std::vector<Value>> regs) {
  const auto& shape = regs_.storage();
  if (regs.size() != shape.size()) {
    throw std::invalid_argument(
        "ReferenceSwitch::restore_registers: register count mismatch");
  }
  for (std::size_t r = 0; r < regs.size(); ++r) {
    if (regs[r].size() != shape[r].size()) {
      throw std::invalid_argument(
          "ReferenceSwitch::restore_registers: register size mismatch");
    }
  }
  regs_ = ir::FlatRegFile(std::move(regs));
}

ReferenceResult ReferenceSwitch::run(
    const std::vector<std::vector<Value>>& packets) {
  ReferenceResult result;
  result.egress_headers.reserve(packets.size());
  for (const auto& pkt : packets) {
    result.egress_headers.push_back(process(pkt));
  }
  result.final_registers = regs_.storage();
  result.accesses = log_;
  return result;
}

} // namespace mp5::banzai
