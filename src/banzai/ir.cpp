#include "banzai/ir.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/hashing.hpp"

namespace mp5::ir {

std::vector<RegId> Stage::stateful_regs() const {
  std::vector<RegId> regs;
  for (const auto& atom : atoms) {
    if (atom.stateful()) regs.push_back(atom.reg);
  }
  return regs;
}

Slot Pvsm::slot_of(const std::string& declared_field) const {
  auto it = declared_slot.find(declared_field);
  if (it == declared_slot.end()) {
    throw Error("Pvsm::slot_of: unknown field '" + declared_field + "'");
  }
  return it->second;
}

std::vector<std::vector<Value>> Pvsm::initial_registers() const {
  std::vector<std::vector<Value>> out;
  out.reserve(registers.size());
  for (const auto& spec : registers) {
    // Same diagnostic as the parser and sema: a size-0 array would make
    // every floor_mod(idx, size) index reduction divide by zero.
    if (spec.size == 0) {
      throw SemanticError("register '" + spec.name +
                          "' must have positive size");
    }
    std::vector<Value> arr(spec.size, 0);
    for (std::size_t i = 0; i < spec.init.size() && i < spec.size; ++i) {
      arr[i] = spec.init[i];
    }
    // Single-value initializer broadcasts, as in `int reg[4] = {0};`.
    if (spec.init.size() == 1) {
      std::fill(arr.begin(), arr.end(), spec.init[0]);
    }
    out.push_back(std::move(arr));
  }
  return out;
}

Value eval_operand(const Operand& op, const std::vector<Value>& headers) {
  if (op.is_const) return op.constant;
  return headers[static_cast<std::size_t>(op.slot)];
}

Value apply_bin(BinOp op, Value a, Value b) {
  switch (op) {
    case BinOp::kAdd: return static_cast<Value>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b));
    case BinOp::kSub: return static_cast<Value>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b));
    case BinOp::kMul: return static_cast<Value>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b));
    case BinOp::kDiv: return b == 0 ? 0 : a / b;
    case BinOp::kMod: return b == 0 ? 0 : a % b;
    case BinOp::kBitAnd: return a & b;
    case BinOp::kBitOr: return a | b;
    case BinOp::kBitXor: return a ^ b;
    case BinOp::kShl: return static_cast<Value>(
        static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63));
    case BinOp::kShr: return static_cast<Value>(
        static_cast<std::uint64_t>(a) >> (static_cast<std::uint64_t>(b) & 63));
    case BinOp::kLt: return a < b ? 1 : 0;
    case BinOp::kLe: return a <= b ? 1 : 0;
    case BinOp::kGt: return a > b ? 1 : 0;
    case BinOp::kGe: return a >= b ? 1 : 0;
    case BinOp::kEq: return a == b ? 1 : 0;
    case BinOp::kNe: return a != b ? 1 : 0;
    case BinOp::kLAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::kLOr: return (a != 0 || b != 0) ? 1 : 0;
    case BinOp::kMin: return std::min(a, b);
    case BinOp::kMax: return std::max(a, b);
  }
  throw Error("apply_bin: bad opcode");
}

Value apply_un(UnOp op, Value a) {
  switch (op) {
    case UnOp::kNeg: return static_cast<Value>(-static_cast<std::uint64_t>(a));
    case UnOp::kLNot: return a == 0 ? 1 : 0;
    case UnOp::kBitNot: return ~a;
  }
  throw Error("apply_un: bad opcode");
}

RegIndex resolve_index(const Operand& index, const std::vector<Value>& headers,
                       std::size_t reg_size) {
  const Value raw = eval_operand(index, headers);
  return static_cast<RegIndex>(
      floor_mod(raw, static_cast<Value>(reg_size)));
}

bool guard_passes(const TacInstr& instr, const std::vector<Value>& headers) {
  if (instr.guard == kNoSlot) return true;
  const bool truthy = headers[static_cast<std::size_t>(instr.guard)] != 0;
  return instr.guard_negate ? !truthy : truthy;
}

void exec_instr(const TacInstr& instr, std::vector<Value>& headers,
                RegFile& regs, const std::vector<RegisterSpec>& specs,
                AccessObserver* observer) {
  if (!guard_passes(instr, headers)) return;
  switch (instr.op) {
    case TacOp::kCopy:
      headers[static_cast<std::size_t>(instr.dst)] =
          eval_operand(instr.a, headers);
      return;
    case TacOp::kUn:
      headers[static_cast<std::size_t>(instr.dst)] =
          apply_un(instr.un, eval_operand(instr.a, headers));
      return;
    case TacOp::kBin:
      headers[static_cast<std::size_t>(instr.dst)] =
          apply_bin(instr.bin, eval_operand(instr.a, headers),
                    eval_operand(instr.b, headers));
      return;
    case TacOp::kSelect:
      headers[static_cast<std::size_t>(instr.dst)] =
          eval_operand(instr.a, headers) != 0
              ? eval_operand(instr.b, headers)
              : eval_operand(instr.c, headers);
      return;
    case TacOp::kHash: {
      std::vector<Value> vals;
      vals.reserve(instr.hash_args.size());
      for (const auto& arg : instr.hash_args) {
        vals.push_back(eval_operand(arg, headers));
      }
      Value h = 0;
      switch (vals.size()) {
        case 2: h = hash2(vals[0], vals[1]); break;
        case 3: h = hash3(vals[0], vals[1], vals[2]); break;
        case 5: h = hash5(vals[0], vals[1], vals[2], vals[3], vals[4]); break;
        default:
          // Fold arbitrary arity through hash2.
          for (const Value v : vals) h = hash2(h, v);
          break;
      }
      headers[static_cast<std::size_t>(instr.dst)] = h;
      return;
    }
    case TacOp::kRegRead: {
      const RegIndex idx =
          resolve_index(instr.index, headers, specs[instr.reg].size);
      if (observer) observer->on_state_access(instr.reg, idx, false);
      headers[static_cast<std::size_t>(instr.dst)] = regs.read(instr.reg, idx);
      return;
    }
    case TacOp::kRegWrite: {
      const RegIndex idx =
          resolve_index(instr.index, headers, specs[instr.reg].size);
      if (observer) observer->on_state_access(instr.reg, idx, true);
      regs.write(instr.reg, idx, eval_operand(instr.a, headers));
      return;
    }
  }
  throw Error("exec_instr: bad opcode");
}

void exec_atom(const Atom& atom, std::vector<Value>& headers, RegFile& regs,
               const std::vector<RegisterSpec>& specs,
               AccessObserver* observer) {
  for (const auto& instr : atom.body) {
    exec_instr(instr, headers, regs, specs, observer);
  }
}

void exec_stage(const Stage& stage, std::vector<Value>& headers, RegFile& regs,
                const std::vector<RegisterSpec>& specs,
                AccessObserver* observer) {
  for (const auto& atom : stage.atoms) {
    exec_atom(atom, headers, regs, specs, observer);
  }
}

namespace {

std::string slot_name(Slot s, const Pvsm& program) {
  if (s == kNoSlot) return "<none>";
  const auto& info = program.fields[static_cast<std::size_t>(s)];
  return info.name;
}

std::string operand_str(const Operand& op, const Pvsm& program) {
  if (op.is_const) return std::to_string(op.constant);
  return slot_name(op.slot, program);
}

const char* bin_str(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kBitAnd: return "&";
    case BinOp::kBitOr: return "|";
    case BinOp::kBitXor: return "^";
    case BinOp::kShl: return "<<";
    case BinOp::kShr: return ">>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLAnd: return "&&";
    case BinOp::kLOr: return "||";
    case BinOp::kMin: return "min";
    case BinOp::kMax: return "max";
  }
  return "?";
}

} // namespace

std::string to_string(const TacInstr& instr, const Pvsm& program) {
  std::ostringstream os;
  if (instr.guard != kNoSlot) {
    os << "[if " << (instr.guard_negate ? "!" : "")
       << slot_name(instr.guard, program) << "] ";
  }
  switch (instr.op) {
    case TacOp::kCopy:
      os << slot_name(instr.dst, program) << " = "
         << operand_str(instr.a, program);
      break;
    case TacOp::kUn:
      os << slot_name(instr.dst, program) << " = "
         << (instr.un == UnOp::kNeg ? "-"
             : instr.un == UnOp::kLNot ? "!" : "~")
         << operand_str(instr.a, program);
      break;
    case TacOp::kBin:
      os << slot_name(instr.dst, program) << " = "
         << operand_str(instr.a, program) << " " << bin_str(instr.bin) << " "
         << operand_str(instr.b, program);
      break;
    case TacOp::kSelect:
      os << slot_name(instr.dst, program) << " = "
         << operand_str(instr.a, program) << " ? "
         << operand_str(instr.b, program) << " : "
         << operand_str(instr.c, program);
      break;
    case TacOp::kHash: {
      os << slot_name(instr.dst, program) << " = hash(";
      for (std::size_t i = 0; i < instr.hash_args.size(); ++i) {
        os << (i ? ", " : "") << operand_str(instr.hash_args[i], program);
      }
      os << ")";
      break;
    }
    case TacOp::kRegRead:
      os << slot_name(instr.dst, program) << " = "
         << program.registers[instr.reg].name << "["
         << operand_str(instr.index, program) << "]";
      break;
    case TacOp::kRegWrite:
      os << program.registers[instr.reg].name << "["
         << operand_str(instr.index, program)
         << "] = " << operand_str(instr.a, program);
      break;
  }
  return os.str();
}

std::string to_string(const Pvsm& program) {
  std::ostringstream os;
  for (std::size_t s = 0; s < program.stages.size(); ++s) {
    os << "stage " << s << ":\n";
    for (const auto& atom : program.stages[s].atoms) {
      if (atom.stateful()) {
        os << "  atom [" << program.registers[atom.reg].name << "]";
        if (atom.guard != kNoSlot) {
          os << " guard " << (atom.guard_negate ? "!" : "")
             << slot_name(atom.guard, program);
        }
        os << ":\n";
      } else {
        os << "  atom [stateless]:\n";
      }
      for (const auto& instr : atom.body) {
        os << "    " << to_string(instr, program) << "\n";
      }
    }
  }
  return os.str();
}

} // namespace mp5::ir
