// Banzai atom templates.
//
// Banzai (the machine model underlying Domino and MP5, §2.1) provides a
// small set of progressively richer stateful atom circuits; a program is
// implementable on a given switch only if each of its fused stateful atoms
// fits the switch's template. This module classifies a compiled atom into
// the canonical template hierarchy:
//
//   kRead       state is only read
//   kWrite      state is only written, with values independent of it
//   kReadWrite  read and overwrite, the new value independent of the old
//   kRaw        read-add-write: new = old + f(packet)
//   kPraw       predicated RAW: the update is guarded
//   kSub        RAW with subtraction / min / max / bitwise combining
//   kIfElseRaw  new = pred ? f1(old, pkt) : f2(old, pkt)
//   kNested     multi-level predication or a non-additive ALU (e.g. mul)
//   kPairs      multiple independent read/write pairs in one atom
//
// The ranks are ordered by circuit complexity; MachineSpec can cap the
// template a target supports (Tofino-class switches sit near kPairs,
// simpler targets lower).
#pragma once

#include <string>

#include "banzai/ir.hpp"

namespace mp5::banzai {

enum class AtomTemplate : std::uint8_t {
  kRead,
  kWrite,
  kReadWrite,
  kRaw,
  kPraw,
  kSub,
  kIfElseRaw,
  kNested,
  kPairs,
};

/// Complexity order (monotone with circuit depth/area).
int template_rank(AtomTemplate t);

const char* to_string(AtomTemplate t);

/// Classify a stateful atom. Throws Error for stateless atoms.
AtomTemplate classify_atom(const ir::Atom& atom);

/// The most complex template used by any stateful atom of the program.
AtomTemplate max_template(const ir::Pvsm& program);

} // namespace mp5::banzai
