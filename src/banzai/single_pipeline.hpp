// Logical single-pipeline Banzai switch: the functional-equivalence
// reference (§2.2).
//
// A single pipeline processes packets strictly in arrival order, and every
// state operation is atomic within its stage, so the end-to-end semantics
// are exactly "run the whole program on each packet, one packet at a time,
// in arrival order". ReferenceSwitch implements that semantics and records
// everything the equivalence checker needs: final register state, final
// per-packet headers, and the per-state access order (the order C1 is
// defined against).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "banzai/ir.hpp"
#include "common/types.hpp"

namespace mp5::banzai {

/// Sequence of packets (by arrival seq) that touched each (reg, index).
struct AccessLog {
  /// key = (reg << 32) | index
  std::unordered_map<std::uint64_t, std::vector<SeqNo>> order;

  static std::uint64_t key(RegId reg, RegIndex index) {
    return (static_cast<std::uint64_t>(reg) << 32) | index;
  }

  void record(RegId reg, RegIndex index, SeqNo seq);
};

struct ReferenceResult {
  std::vector<std::vector<Value>> final_registers;
  /// Final header contents per packet, in arrival order.
  std::vector<std::vector<Value>> egress_headers;
  AccessLog accesses;
};

class ReferenceSwitch {
public:
  explicit ReferenceSwitch(const ir::Pvsm& program);

  /// Process one packet (headers sized to program.num_slots(), declared
  /// fields filled; temporaries zero). Returns the final headers.
  std::vector<Value> process(std::vector<Value> headers);

  /// Convenience: process a whole batch in order and collect everything.
  ReferenceResult run(const std::vector<std::vector<Value>>& packets);

  const std::vector<std::vector<Value>>& registers() const {
    return regs_.storage();
  }
  const AccessLog& accesses() const { return log_; }

  /// Checkpoint support (rolling verifier): overwrite the register state
  /// with a previously captured snapshot. Shapes must match the program.
  void restore_registers(std::vector<std::vector<Value>> regs);

  /// The access log grows with every state-touching packet — fine for batch
  /// checks, unbounded for a 10^9-packet soak. Rolling verification turns it
  /// off (it never consults the log).
  void set_access_logging(bool enabled) { log_accesses_ = enabled; }

private:
  struct Observer final : ir::AccessObserver {
    void on_state_access(RegId reg, RegIndex index, bool is_write) override;
    AccessLog* log = nullptr;
    SeqNo current_seq = 0;
    RegId last_reg = ir::kNoReg;
    RegIndex last_index = 0;
    bool seen = false;
  };

  const ir::Pvsm* program_;
  ir::FlatRegFile regs_;
  AccessLog log_;
  SeqNo next_seq_ = 0;
  bool log_accesses_ = true;
};

} // namespace mp5::banzai
