// Intermediate representation shared by the Domino compiler and the
// switch simulators.
//
// The IR mirrors the paper's compilation pipeline (§3.3):
//   Domino source -> three-address code (TacInstr) -> PVSM (Pvsm: stages of
//   atoms) -> machine check against a Banzai MachineSpec.
//
// An Atom models a Banzai action unit (§2.1): a digital circuit with an
// optional local register state. A stateful atom reads/modifies/writes one
// register array at one index per packet, atomically within its stage. A
// stateless atom is a pure function of header fields and constants.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace mp5::ir {

/// Packet header slot (declared field or compiler temporary).
using Slot = std::int32_t;
inline constexpr Slot kNoSlot = -1;
inline constexpr RegId kNoReg = std::numeric_limits<RegId>::max();

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLAnd, kLOr,
  kMin, kMax,
};

enum class UnOp : std::uint8_t { kNeg, kLNot, kBitNot };

/// Either a compile-time constant or a reference to a header slot.
struct Operand {
  bool is_const = true;
  Value constant = 0;
  Slot slot = kNoSlot;

  static Operand make_const(Value v) { return Operand{true, v, kNoSlot}; }
  static Operand make_slot(Slot s) { return Operand{false, 0, s}; }
};

enum class TacOp : std::uint8_t {
  kCopy,     // dst = a
  kUn,       // dst = un a
  kBin,      // dst = a bin b
  kSelect,   // dst = a ? b : c
  kHash,     // dst = hashN(hash_args...)
  kRegRead,  // dst = reg[index]       (only inside stateful atoms)
  kRegWrite, // reg[index] = a         (only inside stateful atoms)
};

/// One three-address instruction. All register-index expressions are
/// pre-computed into header slots, so `index` is a plain operand.
///
/// `guard`: when >= 0 the instruction executes only if the guard slot's
/// value is truthy (negated when guard_negate). Guards are the residue of
/// if-conversion; they gate state accesses so that a packet only touches
/// the registers its branch actually accesses (which is what MP5's
/// address-resolution logic reasons about, §3.3).
struct TacInstr {
  TacOp op = TacOp::kCopy;
  UnOp un = UnOp::kNeg;
  BinOp bin = BinOp::kAdd;
  Slot dst = kNoSlot;
  Operand a, b, c;
  std::vector<Operand> hash_args;
  RegId reg = kNoReg;
  Operand index;
  Slot guard = kNoSlot;
  bool guard_negate = false;
};

/// Banzai action unit. reg == kNoReg for stateless atoms.
struct Atom {
  RegId reg = kNoReg;
  /// Register index operand (stateful atoms only). Every kRegRead/kRegWrite
  /// in `body` uses this same index — Banzai atoms have a single memory
  /// port, so one index per packet per atom.
  Operand index;
  /// Guard under which this atom's state access happens (kNoSlot = always).
  Slot guard = kNoSlot;
  bool guard_negate = false;
  /// Executed in order, atomically within the stage.
  std::vector<TacInstr> body;

  bool stateful() const noexcept { return reg != kNoReg; }
};

struct Stage {
  std::vector<Atom> atoms;

  /// Registers with a stateful atom in this stage.
  std::vector<RegId> stateful_regs() const;
};

struct RegisterSpec {
  std::string name;
  std::size_t size = 1; // scalar state is a size-1 array
  std::vector<Value> init;
};

struct FieldInfo {
  std::string name;
  bool declared = false; // false for compiler temporaries
};

/// Pipelined Virtual Switch Machine: the paper's intermediate model of a
/// switch pipeline with no computational or resource limits (§3.3).
struct Pvsm {
  std::vector<FieldInfo> fields;                       // slot -> info
  std::unordered_map<std::string, Slot> declared_slot; // name -> slot
  std::vector<RegisterSpec> registers;
  std::vector<Stage> stages;

  Slot slot_of(const std::string& declared_field) const;
  std::size_t num_slots() const noexcept { return fields.size(); }

  /// Total initial register state, flattened per RegisterSpec.
  std::vector<std::vector<Value>> initial_registers() const;
};

/// Abstract register file the TAC executor reads/writes through, so the
/// same executor runs against a single flat register file (reference
/// single-pipeline switch) or one pipeline's shard (MP5).
class RegFile {
public:
  virtual ~RegFile() = default;
  virtual Value read(RegId reg, RegIndex index) = 0;
  virtual void write(RegId reg, RegIndex index, Value v) = 0;
};

/// Trivial RegFile over a flat vector-of-vectors.
class FlatRegFile final : public RegFile {
public:
  explicit FlatRegFile(std::vector<std::vector<Value>> storage)
      : storage_(std::move(storage)) {}

  Value read(RegId reg, RegIndex index) override {
    return storage_[reg][index];
  }
  void write(RegId reg, RegIndex index, Value v) override {
    storage_[reg][index] = v;
  }
  const std::vector<std::vector<Value>>& storage() const { return storage_; }

private:
  std::vector<std::vector<Value>> storage_;
};

/// Evaluate an operand against a header vector.
Value eval_operand(const Operand& op, const std::vector<Value>& headers);

/// Apply a binary / unary operator with the library's fixed semantics
/// (division/modulo by zero yield 0; shifts are masked to 0..63).
Value apply_bin(BinOp op, Value a, Value b);
Value apply_un(UnOp op, Value a);

/// Resolve a register index operand: evaluated value taken modulo the
/// array size (non-negative), matching reg[expr % N] program idiom even
/// when expr itself was not reduced.
RegIndex resolve_index(const Operand& index, const std::vector<Value>& headers,
                       std::size_t reg_size);

/// True if the instruction's guard (if any) passes for these headers.
bool guard_passes(const TacInstr& instr, const std::vector<Value>& headers);

/// Execute one instruction in place. Register accesses go through `regs`
/// using the instruction's own index operand. Optional observer is invoked
/// for every performed (guard-passing) state access, with the concrete
/// index — used by the C1-order checker and sharding statistics.
struct AccessObserver {
  virtual ~AccessObserver() = default;
  virtual void on_state_access(RegId reg, RegIndex index, bool is_write) = 0;
};

void exec_instr(const TacInstr& instr, std::vector<Value>& headers,
                RegFile& regs, const std::vector<RegisterSpec>& specs,
                AccessObserver* observer = nullptr);

/// Execute a whole atom (guard checked once for the state access path;
/// stateless instructions inside the body still honour their own guards).
void exec_atom(const Atom& atom, std::vector<Value>& headers, RegFile& regs,
               const std::vector<RegisterSpec>& specs,
               AccessObserver* observer = nullptr);

/// Execute every atom of a stage in order.
void exec_stage(const Stage& stage, std::vector<Value>& headers, RegFile& regs,
                const std::vector<RegisterSpec>& specs,
                AccessObserver* observer = nullptr);

/// Human-readable dumps (debugging, golden tests).
std::string to_string(const TacInstr& instr, const Pvsm& program);
std::string to_string(const Pvsm& program);

} // namespace mp5::ir
