#include "banzai/machine.hpp"

#include <string>

#include <algorithm>
#include "common/error.hpp"

namespace mp5::banzai {

void MachineSpec::check(const ir::Pvsm& program) const {
  if (program.stages.size() > max_stages) {
    throw ResourceError("program needs " +
                        std::to_string(program.stages.size()) +
                        " stages, machine has " + std::to_string(max_stages));
  }
  for (std::size_t s = 0; s < program.stages.size(); ++s) {
    const auto& stage = program.stages[s];
    if (stage.atoms.size() > max_atoms_per_stage) {
      throw ResourceError("stage " + std::to_string(s) + " has " +
                          std::to_string(stage.atoms.size()) +
                          " atoms, machine allows " +
                          std::to_string(max_atoms_per_stage));
    }
    std::uint32_t stateful = 0;
    std::uint64_t entries = 0;
    for (const auto& atom : stage.atoms) {
      if (atom.stateful()) {
        ++stateful;
        entries += program.registers[atom.reg].size;
      }
      if (atom.stateful() && !atom.body.empty()) {
        const AtomTemplate t = classify_atom(atom);
        if (template_rank(t) > template_rank(max_atom_template)) {
          throw ResourceError(
              "stage " + std::to_string(s) + ": register '" +
              program.registers[atom.reg].name + "' needs the " +
              std::string(to_string(t)) +
              " atom template, machine only provides " +
              to_string(max_atom_template));
        }
      }
      if (atom.body.size() > max_atom_ops) {
        throw ResourceError(
            "stage " + std::to_string(s) + " has an atom with " +
            std::to_string(atom.body.size()) + " ops, machine allows " +
            std::to_string(max_atom_ops) + " per atom");
      }
    }
    if (stateful > max_stateful_atoms_per_stage) {
      throw ResourceError("stage " + std::to_string(s) + " has " +
                          std::to_string(stateful) +
                          " stateful atoms, machine allows " +
                          std::to_string(max_stateful_atoms_per_stage));
    }
    if (entries > max_register_entries_per_stage) {
      throw ResourceError("stage " + std::to_string(s) + " holds " +
                          std::to_string(entries) +
                          " register entries, machine allows " +
                          std::to_string(max_register_entries_per_stage));
    }
  }
}

MachineUsage usage(const ir::Pvsm& program) {
  MachineUsage u;
  u.stages = static_cast<std::uint32_t>(program.stages.size());
  for (const auto& stage : program.stages) {
    u.max_atoms_in_stage = std::max(
        u.max_atoms_in_stage, static_cast<std::uint32_t>(stage.atoms.size()));
    std::uint32_t stateful = 0;
    std::uint64_t entries = 0;
    for (const auto& atom : stage.atoms) {
      u.max_atom_ops = std::max(u.max_atom_ops,
                                static_cast<std::uint32_t>(atom.body.size()));
      if (!atom.stateful()) continue;
      ++stateful;
      entries += program.registers[atom.reg].size;
      if (!atom.body.empty()) {
        const AtomTemplate t = classify_atom(atom);
        if (template_rank(t) > template_rank(u.max_template)) {
          u.max_template = t;
        }
      }
    }
    u.max_stateful_in_stage = std::max(u.max_stateful_in_stage, stateful);
    u.max_entries_in_stage = std::max(u.max_entries_in_stage, entries);
  }
  return u;
}

bool MachineSpec::fits(const ir::Pvsm& program) const {
  try {
    check(program);
    return true;
  } catch (const ResourceError&) {
    return false;
  }
}

} // namespace mp5::banzai
