// Banzai machine resource model (§2.1, §3.3 code-generation phase).
//
// The PVSM assumes no computational or resource limits; code generation
// checks the program against a concrete machine: number of stages, atoms
// per stage, atom circuit depth, and register capacity. The defaults match
// the paper's reference points: 16 stages (§4.3.1), with most practical
// stateful programs needing 4-10 stages (§4.2).
#pragma once

#include <cstdint>

#include "banzai/atom_templates.hpp"
#include "banzai/ir.hpp"

namespace mp5::banzai {

struct MachineSpec {
  std::uint32_t max_stages = 16;
  std::uint32_t max_atoms_per_stage = 64;
  std::uint32_t max_stateful_atoms_per_stage = 4;
  /// Maximum TAC instructions in one atom body — stands in for the bounded
  /// depth of a Banzai atom template's digital circuit.
  std::uint32_t max_atom_ops = 32;
  std::uint64_t max_register_entries_per_stage = 1ull << 20;
  /// Richest stateful atom circuit the target provides (§2.1; the Domino
  /// template hierarchy). Tofino-class defaults to the most general.
  AtomTemplate max_atom_template = AtomTemplate::kPairs;

  /// Throws ResourceError when the program does not fit this machine.
  void check(const ir::Pvsm& program) const;

  /// True when the program fits (no throw).
  bool fits(const ir::Pvsm& program) const;
};

/// Resource footprint of a compiled program, for reports (mp5c) and
/// capacity planning against a MachineSpec.
struct MachineUsage {
  std::uint32_t stages = 0;
  std::uint32_t max_atoms_in_stage = 0;
  std::uint32_t max_stateful_in_stage = 0;
  std::uint32_t max_atom_ops = 0;
  std::uint64_t max_entries_in_stage = 0;
  AtomTemplate max_template = AtomTemplate::kRead;
};

MachineUsage usage(const ir::Pvsm& program);

} // namespace mp5::banzai
