#include "banzai/atom_templates.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace mp5::banzai {
namespace {

using ir::Operand;
using ir::Slot;
using ir::TacInstr;
using ir::TacOp;

bool is_read(const TacInstr& i) { return i.op == TacOp::kRegRead; }
bool is_write(const TacInstr& i) { return i.op == TacOp::kRegWrite; }

/// Does the value in `op` (transitively, through the atom body's temps)
/// depend on a register read?
bool derives_from_old(const Operand& op,
                      const std::unordered_map<Slot, const TacInstr*>& defs,
                      const std::unordered_set<Slot>& read_slots) {
  if (op.is_const) return false;
  if (read_slots.count(op.slot)) return true;
  auto it = defs.find(op.slot);
  if (it == defs.end()) return false; // packet field / external temp
  const TacInstr& instr = *it->second;
  auto dep = [&](const Operand& inner) {
    return derives_from_old(inner, defs, read_slots);
  };
  switch (instr.op) {
    case TacOp::kCopy:
    case TacOp::kUn:
      return dep(instr.a);
    case TacOp::kBin:
      return dep(instr.a) || dep(instr.b);
    case TacOp::kSelect:
      return dep(instr.a) || dep(instr.b) || dep(instr.c);
    case TacOp::kHash: {
      for (const auto& arg : instr.hash_args) {
        if (dep(arg)) return true;
      }
      return false;
    }
    default:
      return false;
  }
}

/// Depth of select nesting on the path from `op` to a register read; -1
/// when the value does not depend on the old state at all.
struct ExprShape {
  bool uses_old = false;
  int select_depth = 0;   // selects on paths that reach the old value
  bool non_additive = false; // mul/div/shift/hash applied to the old value
  bool subtractive = false;  // sub/min/max/bitwise combining with old
  bool single_add = false;   // exactly Bin(add, old-ish, independent)
};

ExprShape shape_of(const Operand& op,
                   const std::unordered_map<Slot, const TacInstr*>& defs,
                   const std::unordered_set<Slot>& read_slots) {
  ExprShape shape;
  if (op.is_const) return shape;
  if (read_slots.count(op.slot)) {
    shape.uses_old = true;
    return shape;
  }
  auto it = defs.find(op.slot);
  if (it == defs.end()) return shape;
  const TacInstr& instr = *it->second;
  auto merge = [&](const ExprShape& inner) {
    shape.uses_old |= inner.uses_old;
    shape.select_depth = std::max(shape.select_depth, inner.select_depth);
    shape.non_additive |= inner.non_additive;
    shape.subtractive |= inner.subtractive;
  };
  switch (instr.op) {
    case TacOp::kCopy:
      return shape_of(instr.a, defs, read_slots);
    case TacOp::kUn: {
      ExprShape inner = shape_of(instr.a, defs, read_slots);
      if (inner.uses_old) inner.subtractive = true; // negation/not of state
      return inner;
    }
    case TacOp::kBin: {
      const ExprShape a = shape_of(instr.a, defs, read_slots);
      const ExprShape b = shape_of(instr.b, defs, read_slots);
      merge(a);
      merge(b);
      if (shape.uses_old) {
        switch (instr.bin) {
          case ir::BinOp::kAdd:
            shape.single_add = (a.uses_old != b.uses_old) &&
                               !shape.non_additive && !shape.subtractive &&
                               shape.select_depth == 0;
            break;
          case ir::BinOp::kSub:
          case ir::BinOp::kMin:
          case ir::BinOp::kMax:
          case ir::BinOp::kBitAnd:
          case ir::BinOp::kBitOr:
          case ir::BinOp::kBitXor:
          case ir::BinOp::kLt:
          case ir::BinOp::kLe:
          case ir::BinOp::kGt:
          case ir::BinOp::kGe:
          case ir::BinOp::kEq:
          case ir::BinOp::kNe:
          case ir::BinOp::kLAnd:
          case ir::BinOp::kLOr:
            shape.subtractive = true;
            break;
          default:
            shape.non_additive = true; // mul/div/mod/shift on state
            break;
        }
      }
      return shape;
    }
    case TacOp::kSelect: {
      const ExprShape cond = shape_of(instr.a, defs, read_slots);
      const ExprShape t = shape_of(instr.b, defs, read_slots);
      const ExprShape f = shape_of(instr.c, defs, read_slots);
      merge(cond);
      merge(t);
      merge(f);
      if (t.uses_old || f.uses_old || cond.uses_old) {
        shape.select_depth =
            1 + std::max({cond.select_depth, t.select_depth, f.select_depth});
      }
      return shape;
    }
    case TacOp::kHash: {
      for (const auto& arg : instr.hash_args) {
        merge(shape_of(arg, defs, read_slots));
      }
      if (shape.uses_old) shape.non_additive = true;
      return shape;
    }
    default:
      return shape;
  }
}

} // namespace

int template_rank(AtomTemplate t) { return static_cast<int>(t); }

const char* to_string(AtomTemplate t) {
  switch (t) {
    case AtomTemplate::kRead: return "Read";
    case AtomTemplate::kWrite: return "Write";
    case AtomTemplate::kReadWrite: return "ReadWrite";
    case AtomTemplate::kRaw: return "RAW";
    case AtomTemplate::kPraw: return "PRAW";
    case AtomTemplate::kSub: return "Sub";
    case AtomTemplate::kIfElseRaw: return "IfElseRAW";
    case AtomTemplate::kNested: return "Nested";
    case AtomTemplate::kPairs: return "Pairs";
  }
  return "?";
}

AtomTemplate classify_atom(const ir::Atom& atom) {
  if (!atom.stateful()) throw Error("classify_atom: stateless atom");

  std::unordered_map<Slot, const TacInstr*> defs;
  std::unordered_set<Slot> read_slots;
  std::size_t writes = 0;
  // All reads in an atom use the unified index, so consecutive reads with
  // no intervening write are one memory-port access (they return the same
  // value). Count read *segments* before the last write; trailing reads
  // tap the freshly written value for free.
  std::size_t read_segments_before_last_write = 0;
  std::ptrdiff_t last_write = -1;
  for (std::size_t i = 0; i < atom.body.size(); ++i) {
    if (is_write(atom.body[i])) last_write = static_cast<std::ptrdiff_t>(i);
  }
  bool in_segment = false;
  for (std::size_t i = 0; i < atom.body.size(); ++i) {
    const auto& instr = atom.body[i];
    if (instr.dst != ir::kNoSlot) defs[instr.dst] = &instr;
    if (is_read(instr)) {
      read_slots.insert(instr.dst);
      if (static_cast<std::ptrdiff_t>(i) < last_write && !in_segment) {
        ++read_segments_before_last_write;
        in_segment = true;
      }
    } else if (is_write(instr)) {
      ++writes;
      in_segment = false;
    }
  }

  if (writes == 0) return AtomTemplate::kRead;
  if (read_slots.empty()) return AtomTemplate::kWrite;
  if (writes >= 2 || read_segments_before_last_write >= 2) {
    return AtomTemplate::kPairs;
  }

  // Single read-modify-write: inspect the written value.
  const TacInstr* write = nullptr;
  for (const auto& instr : atom.body) {
    if (is_write(instr)) write = &instr;
  }
  const ExprShape shape = shape_of(write->a, defs, read_slots);
  const bool guarded = write->guard != ir::kNoSlot;

  AtomTemplate t;
  if (!shape.uses_old) {
    t = AtomTemplate::kReadWrite;
  } else if (shape.non_additive || shape.select_depth >= 2) {
    t = AtomTemplate::kNested;
  } else if (shape.select_depth == 1) {
    t = AtomTemplate::kIfElseRaw;
  } else if (shape.subtractive) {
    t = AtomTemplate::kSub;
  } else {
    t = AtomTemplate::kRaw;
  }
  if (guarded && template_rank(t) < template_rank(AtomTemplate::kPraw)) {
    t = AtomTemplate::kPraw;
  }
  return t;
}

AtomTemplate max_template(const ir::Pvsm& program) {
  AtomTemplate best = AtomTemplate::kRead;
  for (const auto& stage : program.stages) {
    for (const auto& atom : stage.atoms) {
      if (!atom.stateful() || atom.body.empty()) continue;
      const AtomTemplate t = classify_atom(atom);
      if (template_rank(t) > template_rank(best)) best = t;
    }
  }
  return best;
}

} // namespace mp5::banzai
