// Currently header-only; this translation unit anchors the library target
// and will host out-of-line helpers as the packet model grows.
#include "packet/packet.hpp"
