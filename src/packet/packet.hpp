// Packet, phantom-packet, and state-access-plan representations.
//
// In MP5 the data that must stay consistent lives both in switch registers
// and inside packets (§2.2.1), so the Packet object carries:
//   * the header fields (one Value per compiled field slot, including the
//     compiler-introduced temporaries), and
//   * the metadata MP5's address-resolution stage attaches at arrival: the
//     per-stateful-stage access plan <reg, index, pipeline, stage> used for
//     inter-pipeline steering (§3.3, Figure 5).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace mp5 {

inline constexpr RegIndex kUnresolvedIndex =
    std::numeric_limits<RegIndex>::max();
inline constexpr std::uint32_t kNoStage =
    std::numeric_limits<std::uint32_t>::max();

/// Index of a packet slot in a PacketArena (see packet/arena.hpp). The
/// simulator's queues and FIFO entries address packets by ref instead of
/// holding them by value, so moving a packet between structures copies
/// four bytes instead of two heap-backed vectors.
using PacketRef = std::uint32_t;
inline constexpr PacketRef kNullPacketRef =
    std::numeric_limits<PacketRef>::max();

/// How certain the address-resolution stage is that a planned state access
/// will actually happen.
enum class GuardStatus : std::uint8_t {
  /// The access predicate was resolved at arrival and is true (or there is
  /// no predicate): the access definitely happens.
  kTaken,
  /// The predicate could not be resolved preemptively (it depends on
  /// stateful processing). MP5 conservatively generates a phantom packet
  /// anyway; if the predicate later evaluates false the phantom is
  /// cancelled at the cost of one wasted pop cycle (§3.3).
  kConservative,
};

/// One planned stateful access, attached to the packet at arrival by the
/// address-resolution logic the MP5 compiler hoisted to the front of the
/// pipeline.
struct PlannedAccess {
  RegId reg = 0;
  /// Stage (in the *transformed* program's numbering) holding the register.
  StageId stage = 0;
  /// Resolved register index, or kUnresolvedIndex for arrays whose index
  /// computation is itself stateful (such arrays are pinned to one
  /// pipeline, so steering does not need the index).
  RegIndex index = kUnresolvedIndex;
  /// Pipeline the active copy of (reg, index) lived in at resolution time.
  PipelineId pipeline = 0;
  GuardStatus guard = GuardStatus::kTaken;
  /// For kConservative accesses: the transformed-program stage after which
  /// the guard value is known (the packet carries the evaluated guard in a
  /// header slot by then).
  StageId guard_known_after_stage = kNoStage;
  /// Header slot holding the guard value once known (-1 if always taken).
  int guard_slot = -1;
  /// Polarity of the guard slot (true: access happens when the slot is 0).
  bool guard_negate = false;
  /// Set in flight when a conservative guard evaluates to false; the
  /// corresponding phantom has been cancelled and the access is skipped.
  bool cancelled = false;
  /// Set when the access has been performed.
  bool done = false;

  // --- phantom bookkeeping (filled by the simulator) ---
  /// FIFO lane the phantom was pushed into at the destination stage.
  PipelineId phantom_lane = 0;
  /// Index (into the packet's plan) of the entry owning the phantom this
  /// access rides on. Accesses to co-located arrays in the same stage
  /// share one phantom; an entry owning its own phantom points at itself.
  std::size_t phantom_owner = 0;
  /// True if the phantom was dropped at push time (FIFO full); the data
  /// packet is then dropped on arrival at that stage (§3.4).
  bool phantom_dropped = false;
  /// Realistic-channel mode: false while the phantom is still in flight
  /// on the phantom channel (cancellation then intercepts it there).
  bool phantom_delivered = true;
};

/// A packet flowing through a simulated switch.
struct Packet {
  /// Global arrival sequence number; doubles as the FIFO timestamp. This is
  /// the processing order of the logical single-pipeline switch, i.e. the
  /// order condition C1 is enforced against.
  SeqNo seq = kInvalidSeqNo;
  Cycle arrival_cycle = 0;
  std::uint32_t port = 0;
  std::uint32_t size_bytes = 64;
  /// Flow identifier (for reordering metrics only; programs never read it).
  std::uint64_t flow = 0;
  /// ECN-style congestion mark set when the packet queued at a stage FIFO
  /// beyond the configured threshold (§3.4).
  bool ecn_marked = false;
  /// One Value per compiled header slot (declared fields + temporaries).
  std::vector<Value> headers;
  /// Stateful accesses in increasing stage order (the compiler serializes
  /// register arrays so there is at most one access per stage, §3.3).
  std::vector<PlannedAccess> plan;
  /// Index into `plan` of the first access not yet done/cancelled.
  std::size_t next_access = 0;

  /// First pending access, skipping cancelled ones; nullptr when none left.
  PlannedAccess* pending_access() {
    while (next_access < plan.size() &&
           (plan[next_access].done || plan[next_access].cancelled)) {
      ++next_access;
    }
    return next_access < plan.size() ? &plan[next_access] : nullptr;
  }

  /// Reset every logical field to its default while keeping the capacity
  /// of `headers` and `plan` — the whole point of arena recycling is that
  /// a recycled packet re-fills those vectors without reallocating.
  void reset_for_reuse() {
    seq = kInvalidSeqNo;
    arrival_cycle = 0;
    port = 0;
    size_bytes = 64;
    flow = 0;
    ecn_marked = false;
    headers.clear();
    plan.clear();
    next_access = 0;
  }
};

/// Entry in a per-stage FIFO: either a phantom placeholder, the data packet
/// that replaced its phantom (via the FIFO `insert` operation), or a
/// cancelled phantom awaiting its wasted pop cycle. Entries address their
/// data packet through the run's PacketArena, keeping the FIFO rings dense
/// (a 32-byte POD per entry instead of an embedded Packet).
struct FifoEntry {
  enum class Kind : std::uint8_t { kEmpty, kPhantom, kData, kCancelled };
  Kind kind = Kind::kEmpty;
  /// Timestamp used by pop(): the owning packet's arrival sequence number.
  SeqNo seq = kInvalidSeqNo;
  /// Cycle the entry was pushed (phantom generation time); drives the
  /// §3.4 starvation guard.
  Cycle enqueued = 0;
  RegId reg = 0;
  RegIndex index = kUnresolvedIndex;
  /// Valid when kind == kData.
  PacketRef ref = kNullPacketRef;
};

/// Record of a packet leaving the pipeline, used for functional-equivalence
/// checks (packet state per §2.2.1) and reordering analysis.
struct EgressRecord {
  SeqNo seq = 0;
  Cycle egress_cycle = 0;
  std::uint64_t flow = 0;
  std::vector<Value> headers;
};

} // namespace mp5
