// Pool allocator for in-flight packets (hot-path engineering, not paper
// semantics).
//
// The cycle engine used to pass Packet objects by value between the
// ingress queues, the per-cell arrival buffers, and the stage-FIFO ring
// entries. Every hop moved two heap-backed vectors (headers + plan), and
// every admit/retire pair hit the allocator. The arena replaces all of
// that with index addressing: a packet is allocated once at admission,
// referred to everywhere by a 32-bit PacketRef, and recycled through a
// freelist at egress/drop. Recycled slots keep their vectors' capacity,
// so a steady-state run performs no per-packet allocation at all.
//
// Invariants:
//  * get() references are invalidated by alloc() (slot storage may grow).
//    The simulator only allocates during admission, never while a
//    reference is held across stage processing.
//  * release() fully resets the packet's logical fields (see
//    Packet::reset_for_reuse) so no state leaks between the retiring and
//    the next packet in the slot; only vector *capacity* survives.
//  * Double release and use-after-release of a slot are programming
//    errors; release() throws Error on a slot that is not live.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "packet/packet.hpp"

namespace mp5 {

class PacketArena {
public:
  PacketArena() = default;

  /// Grow the slot pool (and freelist) so the next `n` alloc() calls
  /// need no storage growth.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    in_use_.reserve(n);
    free_.reserve(n);
  }

  /// Allocate a packet slot: recycled from the freelist when possible,
  /// fresh otherwise. The returned packet is default-state (recycled
  /// slots were reset at release; their vectors keep capacity).
  PacketRef alloc() {
    ++total_allocs_;
    PacketRef ref;
    if (!free_.empty()) {
      ref = free_.back();
      free_.pop_back();
      ++recycled_;
    } else {
      ref = static_cast<PacketRef>(slots_.size());
      slots_.emplace_back();
      in_use_.push_back(false);
    }
    in_use_[ref] = true;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return ref;
  }

  Packet& get(PacketRef ref) { return slots_[ref]; }
  const Packet& get(PacketRef ref) const { return slots_[ref]; }

  /// Return a slot to the freelist. The packet's logical fields are reset
  /// now (not lazily at the next alloc) so a stale read after release is
  /// loudly wrong rather than silently yesterday's packet.
  void release(PacketRef ref) {
    if (ref >= slots_.size() || !in_use_[ref]) {
      throw Error("PacketArena::release: slot is not live");
    }
    slots_[ref].reset_for_reuse();
    in_use_[ref] = false;
    free_.push_back(ref);
    --live_;
  }

  bool live(PacketRef ref) const {
    return ref < slots_.size() && in_use_[ref];
  }

  std::size_t live_count() const { return live_; }
  std::size_t slot_count() const { return slots_.size(); }
  std::uint64_t total_allocs() const { return total_allocs_; }
  std::uint64_t recycled_allocs() const { return recycled_; }
  std::size_t peak_live() const { return peak_live_; }

private:
  std::vector<Packet> slots_;
  std::vector<bool> in_use_;
  std::vector<PacketRef> free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t recycled_ = 0;
};

} // namespace mp5
