// Pool allocator for in-flight packets (hot-path engineering, not paper
// semantics).
//
// The cycle engine used to pass Packet objects by value between the
// ingress queues, the per-cell arrival buffers, and the stage-FIFO ring
// entries. Every hop moved two heap-backed vectors (headers + plan), and
// every admit/retire pair hit the allocator. The arena replaces all of
// that with index addressing: a packet is allocated once at admission,
// referred to everywhere by a 32-bit PacketRef, and recycled through a
// freelist at egress/drop. Recycled slots keep their vectors' capacity,
// so a steady-state run performs no per-packet allocation at all.
//
// Invariants:
//  * get() references are invalidated by alloc() (slot storage may grow).
//    The simulator only allocates during admission, never while a
//    reference is held across stage processing.
//  * release() fully resets the packet's logical fields (see
//    Packet::reset_for_reuse) so no state leaks between the retiring and
//    the next packet in the slot; only vector *capacity* survives.
//  * Double release and use-after-release of a slot are programming
//    errors; release() throws Error on a slot that is not live.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "packet/packet.hpp"

namespace mp5 {

/// Checkpoint (de)serialization of one packet, every logical field
/// included (headers, the full access plan with phantom bookkeeping, and
/// the next_access cursor) — an in-flight packet restored from a
/// checkpoint must continue through the pipeline bit-identically.
inline void save_packet(ByteWriter& w, const Packet& pkt) {
  w.u64(pkt.seq);
  w.u64(pkt.arrival_cycle);
  w.u32(pkt.port);
  w.u32(pkt.size_bytes);
  w.u64(pkt.flow);
  w.boolean(pkt.ecn_marked);
  w.u64(pkt.headers.size());
  for (const Value v : pkt.headers) w.i64(v);
  w.u64(pkt.plan.size());
  for (const PlannedAccess& a : pkt.plan) {
    w.u32(a.reg);
    w.u32(a.stage);
    w.u32(a.index);
    w.u32(a.pipeline);
    w.u8(static_cast<std::uint8_t>(a.guard));
    w.u32(a.guard_known_after_stage);
    w.i64(a.guard_slot);
    w.boolean(a.guard_negate);
    w.boolean(a.cancelled);
    w.boolean(a.done);
    w.u32(a.phantom_lane);
    w.u64(a.phantom_owner);
    w.boolean(a.phantom_dropped);
    w.boolean(a.phantom_delivered);
  }
  w.u64(pkt.next_access);
}

inline void load_packet(ByteReader& r, Packet& pkt) {
  pkt.seq = r.u64();
  pkt.arrival_cycle = r.u64();
  pkt.port = r.u32();
  pkt.size_bytes = r.u32();
  pkt.flow = r.u64();
  pkt.ecn_marked = r.boolean();
  pkt.headers.resize(r.count(8));
  for (Value& v : pkt.headers) v = r.i64();
  pkt.plan.resize(r.count(8));
  for (PlannedAccess& a : pkt.plan) {
    a.reg = r.u32();
    a.stage = r.u32();
    a.index = r.u32();
    a.pipeline = r.u32();
    const std::uint8_t guard = r.u8();
    if (guard > static_cast<std::uint8_t>(GuardStatus::kConservative)) {
      throw Error("checkpoint: invalid GuardStatus value");
    }
    a.guard = static_cast<GuardStatus>(guard);
    a.guard_known_after_stage = r.u32();
    a.guard_slot = static_cast<int>(r.i64());
    a.guard_negate = r.boolean();
    a.cancelled = r.boolean();
    a.done = r.boolean();
    a.phantom_lane = r.u32();
    a.phantom_owner = static_cast<std::size_t>(r.u64());
    a.phantom_dropped = r.boolean();
    a.phantom_delivered = r.boolean();
  }
  pkt.next_access = static_cast<std::size_t>(r.u64());
}

class PacketArena {
public:
  PacketArena() = default;

  /// Grow the slot pool (and freelist) so the next `n` alloc() calls
  /// need no storage growth.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    in_use_.reserve(n);
    free_.reserve(n);
  }

  /// Allocate a packet slot: recycled from the freelist when possible,
  /// fresh otherwise. The returned packet is default-state (recycled
  /// slots were reset at release; their vectors keep capacity).
  PacketRef alloc() {
    ++total_allocs_;
    PacketRef ref;
    if (!free_.empty()) {
      ref = free_.back();
      free_.pop_back();
      ++recycled_;
    } else {
      ref = static_cast<PacketRef>(slots_.size());
      slots_.emplace_back();
      in_use_.push_back(false);
    }
    in_use_[ref] = true;
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return ref;
  }

  Packet& get(PacketRef ref) { return slots_[ref]; }
  const Packet& get(PacketRef ref) const { return slots_[ref]; }

  /// Return a slot to the freelist. The packet's logical fields are reset
  /// now (not lazily at the next alloc) so a stale read after release is
  /// loudly wrong rather than silently yesterday's packet.
  void release(PacketRef ref) {
    if (ref >= slots_.size() || !in_use_[ref]) {
      throw Error("PacketArena::release: slot is not live");
    }
    slots_[ref].reset_for_reuse();
    in_use_[ref] = false;
    free_.push_back(ref);
    --live_;
  }

  bool live(PacketRef ref) const {
    return ref < slots_.size() && in_use_[ref];
  }

  std::size_t live_count() const { return live_; }
  std::size_t slot_count() const { return slots_.size(); }
  std::uint64_t total_allocs() const { return total_allocs_; }
  std::uint64_t recycled_allocs() const { return recycled_; }
  std::size_t peak_live() const { return peak_live_; }

  /// Checkpoint serialization. Released slots were reset at release()
  /// time, so only live slots carry packet content; the freelist order is
  /// preserved exactly (it determines which slot the next alloc reuses,
  /// and FIFO entries address packets by slot index).
  void save(ByteWriter& w) const {
    w.u64(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      w.boolean(in_use_[i]);
      if (in_use_[i]) save_packet(w, slots_[i]);
    }
    w.u64(free_.size());
    for (const PacketRef ref : free_) w.u32(ref);
    w.u64(peak_live_);
    w.u64(total_allocs_);
    w.u64(recycled_);
  }

  void load(ByteReader& r) {
    const std::uint64_t slot_count = r.count(1);
    slots_.assign(static_cast<std::size_t>(slot_count), Packet{});
    in_use_.assign(static_cast<std::size_t>(slot_count), false);
    live_ = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (r.boolean()) {
        in_use_[i] = true;
        load_packet(r, slots_[i]);
        ++live_;
      }
    }
    free_.resize(static_cast<std::size_t>(r.count(4)));
    for (PacketRef& ref : free_) {
      ref = r.u32();
      if (ref >= slots_.size() || in_use_[ref]) {
        throw Error("checkpoint: arena freelist addresses a live slot");
      }
    }
    if (free_.size() + live_ != slots_.size()) {
      throw Error("checkpoint: arena slot accounting mismatch");
    }
    peak_live_ = static_cast<std::size_t>(r.u64());
    total_allocs_ = r.u64();
    recycled_ = r.u64();
  }

private:
  std::vector<Packet> slots_;
  std::vector<bool> in_use_;
  std::vector<PacketRef> free_;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t recycled_ = 0;
};

} // namespace mp5
